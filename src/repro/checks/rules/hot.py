"""HOT: allocation/lookup discipline inside designated hot paths.

The kernel dispatch loop and the queue backends run once per event --
millions of times per experiment -- and earlier perf work (PR 1/2)
got its wins precisely by keeping those bodies free of allocation and
repeated attribute traversal.  These rules keep that property from
eroding: a function opts in with a ``# repro: hot`` anchor comment
(on or directly above its ``def``) or a ``@hot_path`` decorator, and
the rules then reject the constructs that reintroduce per-event cost.

Only anchored functions are checked; cold paths (compaction, rewind,
stats) stay free to use idiomatic Python.
"""

from __future__ import annotations

import ast
from collections import Counter
from typing import Iterable, Iterator, List

from repro.checks.engine import FunctionInfo, ModuleContext, Rule, rule
from repro.checks.findings import Finding

_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)


def _body_nodes(fn: FunctionInfo) -> Iterator[ast.AST]:
    """Nodes of the function body, not descending into nested defs.

    A nested function is itself reported (HOT002); its body is that
    function's business, not the enclosing hot path's.
    """
    stack: List[ast.AST] = list(ast.iter_child_nodes(fn.node))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
            stack.extend(ast.iter_child_nodes(node))


def _attr_chain(node: ast.AST) -> str:
    """Dotted chain for ``Name.attr[.attr...]`` of depth >= 2, else ``""``."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name) and len(parts) >= 2:
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


@rule
class NoComprehensionRule(Rule):
    """Comprehensions allocate a fresh container/generator per entry."""

    id = "HOT001"
    family = "HOT"
    description = "comprehension inside a hot-path function"

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for fn in ctx.functions_with("hot"):
            yield from self.check_function(ctx, fn)

    def check_function(
        self, ctx: ModuleContext, fn: FunctionInfo
    ) -> Iterable[Finding]:
        for node in _body_nodes(fn):
            if isinstance(node, _COMPREHENSIONS):
                yield self.finding(
                    ctx,
                    node,
                    f"comprehension in hot path {fn.qualname}(); "
                    "hoist the allocation or write an explicit loop",
                )


@rule
class NoClosureRule(Rule):
    """Nested defs/lambdas allocate a function object per call."""

    id = "HOT002"
    family = "HOT"
    description = "closure/lambda defined inside a hot-path function"

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for fn in ctx.functions_with("hot"):
            yield from self.check_function(ctx, fn)

    def check_function(
        self, ctx: ModuleContext, fn: FunctionInfo
    ) -> Iterable[Finding]:
        for node in _body_nodes(fn):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                yield self.finding(
                    ctx,
                    node,
                    f"closure defined in hot path {fn.qualname}(); "
                    "bind it once at construction instead",
                )


@rule
class NoKwargsFanoutRule(Rule):
    """``f(**kwargs)`` builds and unpacks a dict on every call."""

    id = "HOT003"
    family = "HOT"
    description = "** argument fan-out inside a hot-path function"

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for fn in ctx.functions_with("hot"):
            yield from self.check_function(ctx, fn)

    def check_function(
        self, ctx: ModuleContext, fn: FunctionInfo
    ) -> Iterable[Finding]:
        for node in _body_nodes(fn):
            if isinstance(node, ast.Call) and any(
                kw.arg is None for kw in node.keywords
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"**kwargs fan-out in hot path {fn.qualname}(); "
                    "pass explicit arguments",
                )


@rule
class AttrRelookupRule(Rule):
    """The same multi-step attribute chain re-resolved inside a loop.

    ``self._queue.pop`` walked twice per iteration is two dict
    lookups per event that a pre-bound local does once per run --
    exactly the pattern PR 1 removed from ``Simulator.run``.
    """

    id = "HOT004"
    family = "HOT"
    description = "repeated attribute chain lookup in a hot-path loop"

    def _maximal_chains(self, loop: ast.AST):
        """Yield (chain, node) for maximal depth>=2 chains in ``loop``.

        Maximal: ``a.b.c`` inside ``a.b.c.d`` is not counted again,
        and nested defs are skipped (they are HOT002's business).
        """
        stack: List[ast.AST] = [loop]
        while stack:
            node = stack.pop()
            chain = _attr_chain(node)
            if chain:
                yield chain, node
                continue  # don't re-count the chain's own prefixes
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)) and node is not loop:
                continue
            stack.extend(ast.iter_child_nodes(node))

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for fn in ctx.functions_with("hot"):
            yield from self.check_function(ctx, fn)

    def check_function(
        self, ctx: ModuleContext, fn: FunctionInfo
    ) -> Iterable[Finding]:
        reported = set()
        for node in _body_nodes(fn):
            if not isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
                continue
            chains: Counter = Counter()
            anchors = {}
            for chain, sub in self._maximal_chains(node):
                chains[chain] += 1
                anchors.setdefault(chain, sub)
            for chain, count in sorted(chains.items()):
                anchor = anchors[chain]
                key = (anchor.lineno, anchor.col_offset, chain)
                if count >= 2 and key not in reported:
                    reported.add(key)
                    yield self.finding(
                        ctx,
                        anchor,
                        f"attribute chain {chain!r} resolved {count}x "
                        f"in a loop of hot path {fn.qualname}(); "
                        "bind it to a local before the loop",
                    )


#: The HOT discipline rules in id order.  The deep scan
#: (:mod:`repro.checks.graph`) applies these per-function regardless
#: of anchoring, then selects the transitively-hot subset.
HOT_RULES = (
    NoComprehensionRule(),
    NoClosureRule(),
    NoKwargsFanoutRule(),
    AttrRelookupRule(),
)
