"""TEL: telemetry discipline.

The telemetry subsystem's overhead contract (PR 3) holds only if
components resolve their metric handles **once, at construction**,
and then update plain attributes on their event paths.  A
``get_registry()`` call inside an event handler re-runs the registry
lookup (and, with labels, a dict build + sort) per event -- precisely
the cost the null-handle design exists to avoid.

Allowed handle-binding contexts:

* module scope (constants, module-level singletons);
* ``__init__`` methods;
* functions carrying a ``# repro: telemetry-bind`` anchor comment
  (construction-time binding hooks such as ``Regulator.bind_port``);
* anything inside the :mod:`repro.telemetry` package itself.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from repro.checks.engine import FunctionInfo, ModuleContext, Rule, rule
from repro.checks.findings import Finding

_HANDLE_METHODS = ("counter", "gauge", "histogram")


def _enclosing_function(
    ctx: ModuleContext, node: ast.AST
) -> Optional[FunctionInfo]:
    """Innermost function whose span contains ``node`` (None = module)."""
    best: Optional[FunctionInfo] = None
    line = getattr(node, "lineno", 0)
    for fn in ctx.functions:
        fn_node = fn.node
        end = getattr(fn_node, "end_lineno", fn_node.lineno)
        if fn_node.lineno <= line <= end:
            if best is None or fn_node.lineno >= best.node.lineno:
                best = fn
    return best


@rule
class HandleBindingRule(Rule):
    """``get_registry()`` only at construction time."""

    id = "TEL001"
    family = "TEL"
    description = "telemetry handle resolved outside construction"

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        rel = ctx.rel
        if rel is not None and rel.startswith("repro/telemetry/"):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else ""
            )
            if name != "get_registry":
                continue
            fn = _enclosing_function(ctx, node)
            if fn is None:
                continue  # module scope binds once per process
            if fn.node.name == "__init__" or "telemetry-bind" in fn.anchors:
                continue
            yield self.finding(
                ctx,
                node,
                f"get_registry() inside {fn.qualname}(); resolve handles "
                "in __init__ or a '# repro: telemetry-bind' hook, then "
                "update the bound handle",
            )


@rule
class LiteralLabelsRule(Rule):
    """Metric label sets must be literal keyword arguments.

    ``registry.counter(name, **labels)`` hides the label schema from
    both the reader and this linter, and builds a dict per call; spell
    the labels out (``master=self.name``) so the set is fixed at the
    call site.
    """

    id = "TEL002"
    family = "TEL"
    description = "non-literal metric label set (** expansion)"

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr in _HANDLE_METHODS
            ):
                continue
            if any(kw.arg is None for kw in node.keywords):
                yield self.finding(
                    ctx,
                    node,
                    f".{func.attr}(**...) hides the label set; pass "
                    "literal keyword labels",
                )
