"""CONC: process- and async-boundary concurrency discipline.

PR 8 made spec execution cross the fork boundary (``WorkerPool``) and
PR 9 put an asyncio serve loop in front of it.  Both boundaries have
invisible failure modes that a per-module linter cannot see, because
the offending statement is fine *where it is written* and wrong only
because of *where it can execute*:

* ``CONC001`` -- a module global rebound in code reachable from a pool
  worker function mutates the **worker's** copy; the parent process
  never observes the write and the program silently forks state.
* ``CONC002`` -- a field on a ``RunSpec``-shipped dataclass whose type
  cannot cross ``pickle`` (callables, IO handles, locks, threads,
  generators) breaks submission at runtime, long after the field was
  added.
* ``CONC003`` -- a blocking call (``time.sleep``, ``subprocess``,
  synchronous ``open``) reachable from an ``async def`` stalls every
  connection sharing the event loop.
* ``CONC004`` -- a filesystem mutation reachable from worker code
  without the single-flight claim protocol races its siblings; two
  workers list-then-create the same path and one clobbers the other.
  A function whose writes go through an atomic claim (``O_EXCL``
  open, exclusive ``mkdir``) opts in with ``# repro: claim-protocol``.

The location-bound facts (which statements write globals, which calls
block, which calls mutate the filesystem) are pre-computed during the
per-file scan (:func:`repro.checks.graph.extract_symbols`); these
rules select from them by call-graph reachability.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from repro.checks.findings import Finding, Severity
from repro.checks.graph import (
    ClassSym,
    GraphRule,
    ProjectIndex,
    graph_rule,
)

__all__ = ["analysis_summary", "shipped_dataclasses"]

#: Final annotation components that cannot cross ``pickle``.
_UNPICKLABLE = {
    "Callable", "IO", "TextIO", "BinaryIO", "TextIOWrapper",
    "socket", "Socket", "Lock", "RLock", "Semaphore", "Condition",
    "Event", "Thread", "Generator", "Iterator", "AsyncIterator",
    "ModuleType", "FrameType", "Executor", "ProcessPoolExecutor",
    "ThreadPoolExecutor",
}

#: Dataclass names treated as crossing the process boundary.
_SHIPPED_ROOTS = ("RunSpec",)


def _worker_set(index: ProjectIndex) -> Set[str]:
    roots = index.worker_roots()
    return index.reachable(roots)


def _async_set(index: ProjectIndex) -> Set[str]:
    return index.reachable(index.async_roots())


@graph_rule
class WorkerGlobalMutationRule(GraphRule):
    """Module-global rebinds in pool-worker-reachable code."""

    id = "CONC001"
    family = "CONC"
    severity = Severity.ERROR
    description = "module global mutated across the fork boundary"

    def check(self, index: ProjectIndex) -> Iterable[Tuple[Finding, bool]]:
        workers = _worker_set(index)
        for qual in sorted(workers):
            for finding in index.functions[qual].global_writes:
                yield finding, False


def shipped_dataclasses(index: ProjectIndex) -> List[ClassSym]:
    """Dataclasses reachable from a ``RunSpec`` through field types.

    BFS over dataclass-typed fields starting from every project
    dataclass named like a shipped root; everything visited crosses
    the pickle boundary when a spec is submitted to the pool.
    """
    queue = [
        cls for cls in index.classes.values()
        if cls.is_dataclass and cls.name in _SHIPPED_ROOTS
    ]
    seen = {cls.qualname for cls in queue}
    out: List[ClassSym] = []
    while queue:
        cls = queue.pop(0)
        out.append(cls)
        for _name, ann, _line, _src in cls.fields:
            resolved = index.resolve_class(cls.module, ann) if ann else None
            if resolved and resolved not in seen:
                nxt = index.classes[resolved]
                if nxt.is_dataclass:
                    seen.add(resolved)
                    queue.append(nxt)
    return sorted(out, key=lambda c: c.qualname)


@graph_rule
class UnpicklableSpecFieldRule(GraphRule):
    """Non-picklable field types on pool-shipped dataclasses."""

    id = "CONC002"
    family = "CONC"
    severity = Severity.ERROR
    description = "non-picklable field on a RunSpec-shipped dataclass"

    def check(self, index: ProjectIndex) -> Iterable[Tuple[Finding, bool]]:
        for cls in shipped_dataclasses(index):
            for name, ann, line, source in cls.fields:
                tail = ann.rsplit(".", 1)[-1] if ann else ""
                if tail not in _UNPICKLABLE:
                    continue
                finding = Finding(
                    rule_id=self.id,
                    severity=self.severity,
                    path=cls.path,
                    line=line,
                    col=0,
                    message=(
                        f"field {cls.name}.{name}: {ann} cannot cross the "
                        "pickle boundary when the spec ships to a pool "
                        "worker; store a name/key and rebind in the worker"
                    ),
                    source=source,
                )
                yield finding, index.is_suppressed(cls.module, self.id, line)


@graph_rule
class AsyncBlockingCallRule(GraphRule):
    """Blocking calls reachable from asyncio handlers."""

    id = "CONC003"
    family = "CONC"
    severity = Severity.ERROR
    description = "blocking call reachable from an async handler"

    def check(self, index: ProjectIndex) -> Iterable[Tuple[Finding, bool]]:
        async_set = _async_set(index)
        for qual in sorted(async_set):
            for finding in index.functions[qual].blocking_calls:
                yield finding, False


@graph_rule
class WorkerUnclaimedWriteRule(GraphRule):
    """Worker-reachable filesystem mutation without the claim protocol."""

    id = "CONC004"
    family = "CONC"
    severity = Severity.ERROR
    description = "worker-reachable filesystem write without claim protocol"

    def check(self, index: ProjectIndex) -> Iterable[Tuple[Finding, bool]]:
        workers = _worker_set(index)
        for qual in sorted(workers):
            fn = index.functions[qual]
            if "claim-protocol" in fn.anchors:
                continue
            for finding in fn.fs_writes:
                yield finding, False


def analysis_summary(index: ProjectIndex) -> Dict[str, object]:
    """The ``conc`` block of the deep report (``--format json``)."""
    worker_roots = sorted(index.worker_roots())
    async_roots = sorted(index.async_roots())
    return {
        "worker_roots": worker_roots,
        "worker_reachable": len(index.reachable(worker_roots)),
        "async_roots": len(async_roots),
        "async_reachable": len(index.reachable(async_roots)),
    }
