"""ERR: error hygiene.

Library code raises :mod:`repro.errors` subclasses so callers can
catch one type at the API boundary (the CLI turns ``ReproError`` into
exit code 2).  Blanket builtins -- ``Exception``, ``RuntimeError``,
``BaseException`` -- defeat that and are rejected; precise builtins
for programmer error (``TypeError``, ``ValueError``, ``KeyError``,
``IndexError``, ``NotImplementedError``, ...) remain fine.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.checks.engine import ModuleContext, Rule, rule
from repro.checks.findings import Finding

#: Exception names whose *raising* is always a finding.
_BANNED = ("Exception", "BaseException", "RuntimeError")


@rule
class BlanketRaiseRule(Rule):
    """Raise a :mod:`repro.errors` subclass, not a blanket builtin."""

    id = "ERR001"
    family = "ERR"
    description = "raise of Exception/RuntimeError instead of repro.errors"

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            if isinstance(exc, ast.Call):
                exc = exc.func
            name = exc.id if isinstance(exc, ast.Name) else ""
            if name in _BANNED:
                yield self.finding(
                    ctx,
                    node,
                    f"raise {name}: use a repro.errors subclass (or a "
                    "precise builtin like TypeError/ValueError)",
                )
