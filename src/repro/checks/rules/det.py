"""DET: determinism rules.

Simulation results must depend only on the experiment config and its
seed.  These rules reject the usual ways nondeterminism leaks in:
wall-clock reads, the process-global ``random`` module, environment
reads outside the declared config layer, and iteration over sets in
packages whose dispatch order reaches reported numbers.

The config layer is opt-in and explicit: a module whose job is
resolving environment knobs declares itself with a
``# repro: config-layer`` comment, which exempts it from DET003.
:mod:`repro.sim.rng` is the one module allowed to touch ``random``.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.checks.engine import ModuleContext, Rule, rule
from repro.checks.findings import Finding

#: The one module allowed to import/construct from ``random``.
_RNG_MODULE = "repro/sim/rng.py"

#: Wall-clock call sites: (module-ish value name, attribute).
_WALL_CLOCK = {
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("date", "today"),
}

#: Packages where iteration order reaches reported results.
_ORDER_SENSITIVE = ("repro/sim/", "repro/axi/", "repro/dram/", "repro/regulation/")


def _walk(tree: ast.AST) -> Iterator[ast.AST]:
    return ast.walk(tree)


def _dotted(node: ast.AST) -> str:
    """``a.b.c`` for nested name/attribute chains, else ``""``."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


@rule
class WallClockRule(Rule):
    """No wall-clock reads on result-producing paths.

    ``time.perf_counter`` is deliberately *not* flagged: it feeds
    telemetry (profiler, runner wall times), never simulated results.
    """

    id = "DET001"
    family = "DET"
    description = "wall-clock read (time.time/datetime.now) is nondeterministic"

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for node in _walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            base = func.value
            base_name = base.id if isinstance(base, ast.Name) else (
                base.attr if isinstance(base, ast.Attribute) else ""
            )
            if (base_name, func.attr) in _WALL_CLOCK:
                yield self.finding(
                    ctx,
                    node,
                    f"wall-clock read {_dotted(func) or func.attr}(); "
                    "results must depend only on config + seed",
                )


@rule
class GlobalRandomRule(Rule):
    """The global ``random`` module stays out of everything but
    :mod:`repro.sim.rng`.

    Components draw from per-component streams seeded from
    ``(experiment_seed, component_name)`` -- import the RNG type and
    constructors from ``repro.sim.rng`` instead.
    """

    id = "DET002"
    family = "DET"
    description = "global random module used outside repro.sim.rng"

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        if ctx.rel == _RNG_MODULE:
            return
        for node in _walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield self.finding(
                            ctx,
                            node,
                            "import of the global random module; use the "
                            "seeded streams in repro.sim.rng",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random" and node.level == 0:
                    yield self.finding(
                        ctx,
                        node,
                        "from random import ...; use the seeded streams "
                        "in repro.sim.rng",
                    )


@rule
class EnvReadRule(Rule):
    """Environment reads only in the declared config layer.

    A knob read mid-run is invisible to the experiment's content hash
    (the result cache would serve stale entries) and to anyone
    reproducing a table.  Modules that resolve env knobs declare
    ``# repro: config-layer``; everything else takes configuration as
    arguments.
    """

    id = "DET003"
    family = "DET"
    description = "os.environ read outside the config layer"

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        if ctx.rel == _RNG_MODULE or "config-layer" in ctx.markers:
            return
        for node in _walk(ctx.tree):
            if isinstance(node, ast.Call):
                dotted = _dotted(node.func)
                if dotted in ("os.getenv", "os.environ.get", "environ.get"):
                    yield self.finding(
                        ctx,
                        node,
                        f"{dotted}() outside the config layer; mark the "
                        "module '# repro: config-layer' or pass the value in",
                    )
            elif isinstance(node, ast.Subscript) and isinstance(
                node.ctx, ast.Load
            ):
                if _dotted(node.value) in ("os.environ", "environ"):
                    yield self.finding(
                        ctx,
                        node,
                        "os.environ[...] read outside the config layer",
                    )


@rule
class SetIterationRule(Rule):
    """No iteration over sets where order can reach results.

    Set iteration order varies with insertion history and hash
    salting; inside the simulation packages it silently changes
    dispatch order.  Wrap the iterable in ``sorted(...)`` or use a
    list/dict (insertion-ordered) instead.
    """

    id = "DET004"
    family = "DET"
    description = "iteration over a set in an order-sensitive package"

    def _is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in ("set", "frozenset")
        return False

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        rel = ctx.rel
        if rel is not None and not rel.startswith(_ORDER_SENSITIVE):
            return
        for node in _walk(ctx.tree):
            iters = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                if self._is_set_expr(it):
                    yield self.finding(
                        ctx,
                        node,
                        "iterating a set here makes dispatch order depend "
                        "on hashing; sort it or use a list/dict",
                    )
