"""FFC: the fast-forward analytic contract on regulator classes.

The macro-stepping engine (:mod:`repro.sim.fastforward`) is only
sound when every regulator in a blocked region answers the analytic
protocol honestly: ``ff_horizon(now)`` bounds the macro-step,
``ff_advance_bulk(now)`` settles internal clocks to exactly the state
a per-cycle walk would have left.  A regulator that silently falls
back to the base class's ``None`` horizon is *correct* (the region
stays event-accurate) but invisibly cripples the optimisation; a
regulator with a misdeclared signature is silently never called.
These rules make the contract explicit:

* ``FFC001`` -- a ``BandwidthRegulator`` subclass neither implements
  ``ff_horizon`` (itself or via an ancestor other than the base) nor
  carries a ``# repro: ff-opt-out`` anchor on its ``class`` line.
  Opting out is fine -- PREM's phase admission depends on traffic,
  not time alone -- but it must be a reviewed decision, not a
  default.
* ``FFC002`` -- an ``ff_horizon`` / ``ff_advance_bulk`` /
  ``ff_quiescent`` override whose signature deviates from the
  protocol (exactly ``(self, now)``, synchronous, a plain method).
  The engine calls these positionally once per region; a deviant
  override would raise -- or worse, bind ``now`` to the wrong
  parameter.
* ``FFC003`` -- ``ff_advance_bulk`` without ``ff_horizon``: the
  settle half of the contract is dead code when the horizon half
  never admits a macro-step.

The static half is paired with a runtime differential harness
(:mod:`repro.checks.ffdiff`) that executes each shipped regulator
FF-on vs FF-off and fails on any table divergence.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.checks.findings import Finding, Severity
from repro.checks.graph import (
    ClassSym,
    GraphRule,
    ProjectIndex,
    graph_rule,
)

__all__ = ["analysis_summary", "regulator_classes"]

#: The root of the regulator hierarchy (matched by class name so
#: fixture projects can define their own base).
_BASE_NAME = "BandwidthRegulator"

#: Methods whose signatures the engine relies on positionally.
_CONTRACT_METHODS = ("ff_horizon", "ff_advance_bulk", "ff_quiescent")


def regulator_classes(index: ProjectIndex) -> List[ClassSym]:
    """Concrete regulator classes: subclasses of the base, not it."""
    out: List[ClassSym] = []
    for cls in sorted(index.classes.values(), key=lambda c: c.qualname):
        if cls.name == _BASE_NAME:
            continue
        ancestors = index.mro(cls.qualname)[1:]
        named = any(index.classes[a].name == _BASE_NAME for a in ancestors)
        raw = any(
            base.rsplit(".", 1)[-1] == _BASE_NAME for base in cls.bases
        )
        if named or raw:
            out.append(cls)
    return out


def _contract_impl(index: ProjectIndex, cls: ClassSym, method: str
                   ) -> Optional[str]:
    """Qualname of ``method`` defined outside the base, else ``None``."""
    for ancestor in index.mro(cls.qualname):
        asym = index.classes[ancestor]
        if asym.name == _BASE_NAME:
            continue
        if method in asym.methods:
            return asym.methods[method]
    return None


def _class_finding(rule: GraphRule, cls: ClassSym, message: str) -> Finding:
    return Finding(
        rule_id=rule.id,
        severity=rule.severity,
        path=cls.path,
        line=cls.line,
        col=0,
        message=message,
        source=cls.source,
    )


@graph_rule
class MissingContractRule(GraphRule):
    """Regulator with neither ``ff_horizon`` nor an explicit opt-out."""

    id = "FFC001"
    family = "FFC"
    severity = Severity.ERROR
    description = "Regulator subclass missing ff contract and opt-out"

    def check(self, index: ProjectIndex) -> Iterable[Tuple[Finding, bool]]:
        for cls in regulator_classes(index):
            if "ff-opt-out" in cls.anchors:
                continue
            if _contract_impl(index, cls, "ff_horizon"):
                continue
            finding = _class_finding(
                self, cls,
                f"{cls.name} neither implements ff_horizon nor opts out; "
                "implement the analytic contract or mark the class with "
                "'# repro: ff-opt-out' and a justification",
            )
            yield finding, index.is_suppressed(cls.module, self.id, cls.line)


@graph_rule
class ContractSignatureRule(GraphRule):
    """FF protocol override with a deviant signature."""

    id = "FFC002"
    family = "FFC"
    severity = Severity.ERROR
    description = "ff_horizon/ff_advance_bulk signature deviates from (self, now)"

    def check(self, index: ProjectIndex) -> Iterable[Tuple[Finding, bool]]:
        for cls in sorted(index.classes.values(), key=lambda c: c.qualname):
            for method in _CONTRACT_METHODS:
                qual = cls.methods.get(method)
                if qual is None:
                    continue
                fn = index.functions[qual]
                problems: List[str] = []
                if "staticmethod" in fn.decorators or \
                        "classmethod" in fn.decorators:
                    problems.append("must be a plain instance method")
                elif fn.params != ("self", "now"):
                    got = ", ".join(fn.params) or "<none>"
                    problems.append(
                        f"parameters must be exactly (self, now), got ({got})"
                    )
                if fn.is_async:
                    problems.append("must be synchronous")
                if not problems:
                    continue
                finding = Finding(
                    rule_id=self.id,
                    severity=self.severity,
                    path=cls.path,
                    line=fn.line,
                    col=0,
                    message=(
                        f"{cls.name}.{method}: " + "; ".join(problems) +
                        " (the fast-forward engine calls it positionally)"
                    ),
                )
                yield finding, index.is_suppressed(cls.module, self.id,
                                                  fn.line)


@graph_rule
class OrphanAdvanceRule(GraphRule):
    """``ff_advance_bulk`` without the horizon half of the contract."""

    id = "FFC003"
    family = "FFC"
    severity = Severity.WARNING
    description = "ff_advance_bulk implemented without ff_horizon"

    def check(self, index: ProjectIndex) -> Iterable[Tuple[Finding, bool]]:
        for cls in regulator_classes(index):
            advance = _contract_impl(index, cls, "ff_advance_bulk")
            if advance is None:
                continue
            if _contract_impl(index, cls, "ff_horizon"):
                continue
            fn = index.functions[advance]
            finding = _class_finding(
                self, cls,
                f"{cls.name} implements ff_advance_bulk (line {fn.line}) "
                "but not ff_horizon; the engine never admits a macro-step "
                "for it, so the settle path is dead",
            )
            yield finding, index.is_suppressed(cls.module, self.id, cls.line)


def analysis_summary(index: ProjectIndex) -> Dict[str, object]:
    """The ``ffc`` block of the deep report (``--format json``)."""
    regulators = regulator_classes(index)
    implemented = []
    opted_out = []
    missing = []
    for cls in regulators:
        if _contract_impl(index, cls, "ff_horizon"):
            implemented.append(cls.name)
        elif "ff-opt-out" in cls.anchors:
            opted_out.append(cls.name)
        else:
            missing.append(cls.name)
    return {
        "regulators": sorted(c.name for c in regulators),
        "implemented": sorted(implemented),
        "opted_out": sorted(opted_out),
        "missing": sorted(missing),
    }
