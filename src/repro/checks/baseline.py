"""Baseline files: grandfathered lint findings.

A baseline lets the lint gate turn on while known findings are paid
down incrementally: fingerprints recorded in the baseline are
reported but do not fail the run; any *new* finding still does.  The
shipped tree keeps an **empty** baseline (``repro check lint src/``
is clean); the mechanism exists so a future rule can land before its
cleanup is finished without weakening the gate for everything else.

Format (JSON, counts per fingerprint so duplicates stay bounded)::

    {"version": 1, "findings": {"<fingerprint>": <count>, ...}}
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable

from repro.checks.findings import Finding
from repro.errors import LintError

#: Default baseline location, relative to the working directory.
DEFAULT_BASELINE = ".repro-lint-baseline.json"

_VERSION = 1


def load_baseline(path: str) -> Dict[str, int]:
    """Read a baseline file into a fingerprint -> count mapping.

    Raises:
        LintError: when the file exists but is malformed.
    """
    if not os.path.exists(path):
        return {}
    try:
        with open(path, encoding="utf-8") as fh:
            payload = json.load(fh)
        if payload.get("version") != _VERSION:
            raise ValueError(f"unsupported version {payload.get('version')!r}")
        findings = payload["findings"]
        return {
            str(fp): int(count)
            for fp, count in findings.items()
            if int(count) > 0
        }
    except (OSError, ValueError, KeyError, AttributeError, TypeError) as exc:
        raise LintError(f"corrupt baseline {path}: {exc}") from exc


def write_baseline(path: str, findings: Iterable[Finding]) -> Dict[str, int]:
    """Record ``findings`` as the new baseline; returns the mapping."""
    counts: Dict[str, int] = {}
    for finding in findings:
        fp = finding.fingerprint()
        counts[fp] = counts.get(fp, 0) + 1
    payload = {"version": _VERSION, "findings": dict(sorted(counts.items()))}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return counts
