"""Runtime differential harness for the fast-forward contract.

The static FFC rules (:mod:`repro.checks.rules.ffc`) prove a
regulator *declares* the analytic protocol; this harness proves the
declaration is *honest*.  For every shipped regulator family that
implements ``ff_horizon`` -- the token-bucket configuration of the
tightly-coupled IP, the plain TC window, software MemGuard, and TDMA
-- it runs a deterministic grid of open-loop streaming scenarios with
``REPRO_FASTFORWARD`` off and on and fails unless the full result
tables are byte-identical.  Engagement is asserted too: at least one
point per family must actually macro-step (``ff_regions > 0``),
otherwise the identity check silently passes on a detector that
declines everything.

The grid is a *fuzz by enumeration*: per family it varies budget
share, window/period granularity, stream fan-in, and the platform
seed.  Everything is fixed at authoring time -- no wall clock, no
global ``random`` -- so a divergence is reproducible from the
printed point label alone.

Exposed as ``repro check ffdiff`` (``--quick`` runs one point per
family, the CI default runs the full grid).
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass
from typing import Iterator, List, Optional, TextIO, Tuple

from repro.regulation.factory import RegulatorSpec

__all__ = ["DiffPoint", "iter_points", "run_point", "run_ffdiff"]

#: Link peak, bytes per cycle (matches the standard platform presets).
_PEAK = 16.0

#: Horizon of each open-loop scenario (cycles).
_HORIZON = 40_000

#: Per-family parameter grids: (share, granularity_cycles, streams, seed).
_GRID = {
    "token_bucket": (
        (0.01, 1024, 1, 3),
        (0.05, 512, 2, 5),
    ),
    "tc_window": (
        (0.01, 1024, 1, 3),
        (0.005, 2048, 2, 7),
    ),
    "memguard": (
        (0.01, 2048, 1, 3),
        (0.02, 4096, 2, 11),
    ),
    "tdma": (
        (0.25, 256, 1, 3),
        (0.25, 512, 2, 5),
    ),
}


@dataclass(frozen=True)
class DiffPoint:
    """One regulator configuration under differential test."""

    family: str
    label: str
    spec: RegulatorSpec
    streams: int
    seed: int


def _spec_for(family: str, share: float, granularity: int) -> RegulatorSpec:
    budget = max(1, round(share * _PEAK * granularity))
    if family == "token_bucket":
        return RegulatorSpec(
            kind="tightly_coupled",
            window_cycles=granularity,
            budget_bytes=budget,
            carryover_windows=2,
        )
    if family == "tc_window":
        return RegulatorSpec(
            kind="tightly_coupled",
            window_cycles=granularity,
            budget_bytes=budget,
        )
    if family == "memguard":
        return RegulatorSpec(
            kind="memguard",
            period_cycles=granularity,
            budget_bytes=budget,
        )
    if family == "tdma":
        # A frame larger than the stream count leaves empty slots --
        # windows where *every* stream is denied -- which is exactly
        # the all-blocked region shape the engine macro-steps over.
        return RegulatorSpec(
            kind="tdma", window_cycles=granularity, tdma_slots=4
        )
    raise ValueError(f"unknown ffdiff family {family!r}")


def iter_points(quick: bool = False) -> Iterator[DiffPoint]:
    """The deterministic test grid, one :class:`DiffPoint` at a time."""
    for family in sorted(_GRID):
        rows = _GRID[family][:1] if quick else _GRID[family]
        for share, granularity, streams, seed in rows:
            yield DiffPoint(
                family=family,
                label=(
                    f"{family}[share={share},gran={granularity},"
                    f"x{streams},seed={seed}]"
                ),
                spec=_spec_for(family, share, granularity),
                streams=streams,
                seed=seed,
            )


def _config(point: DiffPoint):
    """Open-loop streaming platform config for one point."""
    from repro.soc.platform import MasterSpec, PlatformConfig

    masters = tuple(
        MasterSpec(
            name=f"olp{i}",
            workload="open_loop_stream",
            region_base=0x1000_0000 + i * (4 << 20),
            region_extent=4 << 20,
            regulator=point.spec,
        )
        for i in range(point.streams)
    )
    return PlatformConfig(masters=masters, seed=point.seed)


def _run_table(point: DiffPoint, fastforward: bool) -> Tuple[str, int]:
    """One run of ``point`` -> ``(summary json, ff_regions)``."""
    from repro.sim.kernel import FASTFORWARD_ENV
    from repro.soc.experiment import PlatformResult
    from repro.soc.platform import Platform

    # The harness *sets* the fast-forward knob for the child runs and
    # must restore whatever the caller had.  # repro: allow[DET003]
    saved = os.environ.get(FASTFORWARD_ENV)
    os.environ[FASTFORWARD_ENV] = "1" if fastforward else "0"
    try:
        platform = Platform(_config(point))
        elapsed = platform.run(_HORIZON)
        table = PlatformResult(platform, elapsed).summary().to_json()
        regions = platform.sim.kernel_stats().get("ff_regions", 0)
    finally:
        if saved is None:
            os.environ.pop(FASTFORWARD_ENV, None)
        else:
            os.environ[FASTFORWARD_ENV] = saved
    return table, regions


def run_point(point: DiffPoint) -> Tuple[bool, int]:
    """Differential-test one point -> ``(identical, ff_regions)``."""
    reference, _ = _run_table(point, fastforward=False)
    table, regions = _run_table(point, fastforward=True)
    return table == reference, regions


def run_ffdiff(
    quick: bool = False, stream: Optional[TextIO] = None
) -> int:
    """Run the grid; print one line per point; return the exit code.

    Exit 0 = every point byte-identical and every family engaged the
    engine at least once; 1 otherwise.
    """
    if stream is None:
        stream = sys.stdout
    failures = 0
    engaged: dict = {}
    families: List[str] = []
    for point in iter_points(quick):
        if point.family not in families:
            families.append(point.family)
        identical, regions = run_point(point)
        engaged[point.family] = engaged.get(point.family, 0) + regions
        status = "identical" if identical else "DIVERGED"
        print(
            f"ffdiff: {point.label}: {status}, "
            f"{regions} region(s) macro-stepped",
            file=stream,
        )
        if not identical:
            failures += 1
    for family in families:
        if engaged.get(family, 0) == 0:
            print(
                f"ffdiff: FAIL: {family} never engaged the fast-forward "
                "engine (identity check is vacuous)",
                file=stream,
            )
            failures += 1
    return 1 if failures else 0
