"""Tests for MemGuard's predictive budget reclaim."""

import pytest

from repro.errors import RegulationError
from repro.regulation.factory import RegulatorSpec, make_regulator
from repro.regulation.memguard import MemGuardConfig, MemGuardRegulator, ReclaimPool
from repro.soc.experiment import PlatformResult
from repro.soc.platform import MasterSpec, Platform, PlatformConfig

MB = 1 << 20


class TestReclaimPool:
    def test_donate_and_take(self):
        pool = ReclaimPool()
        pool.start_period(0)
        pool.donate(1000)
        assert pool.take(400) == 400
        assert pool.take(800) == 600  # only what is left
        assert pool.available == 0

    def test_period_reset(self):
        pool = ReclaimPool()
        pool.start_period(0)
        pool.donate(1000)
        pool.start_period(100)
        assert pool.available == 0

    def test_reset_idempotent_within_cycle(self):
        pool = ReclaimPool()
        pool.start_period(0)
        pool.donate(500)
        pool.start_period(0)  # second regulator ticking the same cycle
        assert pool.available == 500

    def test_totals(self):
        pool = ReclaimPool()
        pool.start_period(0)
        pool.donate(300)
        pool.take(100)
        assert pool.donated_total == 300
        assert pool.reclaimed_total == 100

    def test_validation(self):
        pool = ReclaimPool()
        with pytest.raises(RegulationError):
            pool.donate(-1)
        with pytest.raises(RegulationError):
            pool.take(-1)


class TestConstruction:
    def test_reclaim_without_pool_rejected(self, sim):
        with pytest.raises(RegulationError):
            MemGuardRegulator(sim, MemGuardConfig(reclaim=True))

    def test_factory_requires_pool(self, sim):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            make_regulator(RegulatorSpec(kind="memguard", reclaim=True), sim)

    def test_factory_with_pool(self, sim):
        pool = ReclaimPool()
        reg = make_regulator(
            RegulatorSpec(kind="memguard", reclaim=True), sim,
            reclaim_pool=pool,
        )
        assert reg.pool is pool

    def test_chunk_validation(self):
        with pytest.raises(RegulationError):
            MemGuardConfig(reclaim_chunk=0)


class TestReclaimSystem:
    def _config(self, reclaim):
        # The donor moves a bounded amount of data and then goes idle;
        # from that point its whole per-period budget is donated to
        # the pool, which the always-on taker drains chunk by chunk.
        # Both are budgeted at 20% of peak per period.
        spec = RegulatorSpec(
            kind="memguard",
            period_cycles=20_000,
            budget_bytes=round(0.2 * 16.0 * 20_000),
            reclaim=reclaim,
            reclaim_chunk=8_192,
        )
        masters = (
            MasterSpec(
                name="donor", workload="stream_read",
                region_base=0x1000_0000, region_extent=4 * MB,
                work=64 * 1024,
                regulator=spec,
            ),
            MasterSpec(
                name="taker", workload="stream_read",
                region_base=0x1040_0000, region_extent=4 * MB,
                regulator=spec,
            ),
        )
        return PlatformConfig(masters=masters)

    def _run(self, reclaim, horizon=400_000):
        platform = Platform(self._config(reclaim))
        elapsed = platform.run(horizon, stop_when_critical_done=False)
        return platform, PlatformResult(platform, elapsed), elapsed

    def test_taker_gains_from_donated_budget(self):
        _p0, without, h0 = self._run(False)
        p1, with_reclaim, h1 = self._run(True)
        assert (
            with_reclaim.master("taker").bandwidth_bytes_per_cycle
            > without.master("taker").bandwidth_bytes_per_cycle * 1.1
        )
        assert p1.regulators["taker"].reclaimed_bytes > 0

    def test_total_stays_within_global_reservation(self):
        p1, result, horizon = self._run(True)
        total_rate = (
            sum(m.bytes_moved for m in result.masters.values()) / horizon
        )
        # Reclaim redistributes; the global allowance is 2 x 20% plus
        # per-period overshoot slack (IRQ latency + in-flight bursts).
        global_rate = 2 * 0.2 * 16.0
        assert total_rate <= global_rate * 1.15

    def test_pool_accounting_consistent(self):
        p1, _result, _h = self._run(True)
        pool = p1.reclaim_pool
        assert pool.reclaimed_total <= pool.donated_total
