"""Unit + behaviour tests for the tightly-coupled regulator."""

import pytest

from repro.errors import RegulationError
from repro.regulation.tightly_coupled import (
    TightlyCoupledConfig,
    TightlyCoupledRegulator,
)
from repro.traffic.accelerator import AcceleratorConfig, StreamAccelerator
from repro.traffic.patterns import SequentialPattern
from repro.axi.txn import Transaction


def txn(nbytes=256, master="m0"):
    beats = max(1, nbytes // 16)
    return Transaction(
        master=master, is_write=False, addr=0, burst_len=beats, bytes_per_beat=16
    )


def make_regulator(sim, **kwargs):
    defaults = dict(window_cycles=100, budget_bytes=1000)
    defaults.update(kwargs)
    return TightlyCoupledRegulator(sim, TightlyCoupledConfig(**defaults))


class TestConfig:
    def test_capacity_includes_carryover(self):
        cfg = TightlyCoupledConfig(
            window_cycles=100, budget_bytes=1000, carryover_windows=3
        )
        assert cfg.capacity_bytes == 4000

    def test_rate(self):
        cfg = TightlyCoupledConfig(window_cycles=200, budget_bytes=100)
        assert cfg.bandwidth_bytes_per_cycle() == 0.5

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(window_cycles=0),
            dict(budget_bytes=0),
            dict(carryover_windows=-1),
            dict(feedback_delay=-1),
            dict(reconfig_latency=-1),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(RegulationError):
            TightlyCoupledConfig(**kwargs)


class TestAdmission:
    def test_admits_until_budget_spent(self, sim):
        reg = make_regulator(sim, budget_bytes=600)
        t = txn(256)
        assert reg.may_issue(t, 0)
        reg.charge(t, 0)
        t2 = txn(256)
        assert reg.may_issue(t2, 0)
        reg.charge(t2, 0)
        # 512 of 600 spent; another 256 does not fit (burst-aware).
        assert not reg.may_issue(txn(256), 0)

    def test_burst_aware_never_overdraws(self, sim):
        reg = make_regulator(sim, budget_bytes=600)
        spent = 0
        now = 0
        for _ in range(10):
            t = txn(256)
            if reg.may_issue(t, now):
                reg.charge(t, now)
                spent += t.nbytes
        assert spent <= 600

    def test_non_burst_aware_admits_on_any_credit(self, sim):
        reg = make_regulator(sim, budget_bytes=300, burst_aware=False)
        t = txn(256)
        assert reg.may_issue(t, 0)
        reg.charge(t, 0)
        # 44 bytes of credit left: still admits a full burst (bounded
        # overdraw mode).
        assert reg.may_issue(txn(256), 0)

    def test_replenish_restores_admission(self, sim):
        reg = make_regulator(sim, window_cycles=100, budget_bytes=256)
        t = txn(256)
        reg.charge(t, 0)
        assert not reg.may_issue(txn(256), 50)
        assert reg.may_issue(txn(256), 100)

    def test_next_opportunity_is_window_boundary(self, sim):
        reg = make_regulator(sim, window_cycles=100, budget_bytes=256)
        reg.charge(txn(256), 5)
        assert reg.next_opportunity(txn(256), 10) == 100

    def test_tumbling_window_discards_unused_credit(self, sim):
        reg = make_regulator(sim, window_cycles=100, budget_bytes=300,
                             carryover_windows=0)
        reg.charge(txn(256), 0)
        # Idle for 5 windows; credit is back to one budget, no more:
        # a second 256 B burst in the same window must not fit.
        assert reg.may_issue(txn(256), 500)
        reg.charge(txn(256), 500)
        assert not reg.may_issue(txn(256), 500)

    def test_carryover_accumulates_bounded(self, sim):
        reg = make_regulator(sim, window_cycles=100, budget_bytes=300,
                             carryover_windows=1, allow_oversize=False)
        # After an idle window the bucket holds 2 budgets: 512 fits.
        assert reg.may_issue(txn(512), 150)
        # But never more than (1 + carryover) budgets, however long
        # the idle time (oversize path disabled to isolate the bound).
        assert not reg.may_issue(txn(768), 10_000)


class TestOversize:
    def test_oversize_admitted_when_full(self, sim):
        reg = make_regulator(sim, window_cycles=100, budget_bytes=100)
        big = txn(256)
        assert reg.may_issue(big, 0)  # bucket full -> forward progress
        reg.charge(big, 0)
        assert not reg.may_issue(txn(256), 0)
        # The 256 B burst left a 156 B debt against the 100 B bucket:
        # windows at 100 and 200 repay it; full again at 300.
        assert not reg.may_issue(txn(256), 100)
        assert not reg.may_issue(txn(256), 200)
        assert reg.may_issue(txn(256), 300)

    def test_oversize_long_run_rate_is_budget(self, sim):
        # Debt repayment keeps the oversize path at the configured
        # rate: one 256 B burst per ceil(256/100)=3 windows-to-full.
        reg = make_regulator(sim, window_cycles=100, budget_bytes=100)
        admitted = 0
        for now in range(0, 3000, 100):
            t = txn(256)
            if reg.may_issue(t, now):
                reg.charge(t, now)
                admitted += 1
        # 30 windows of 100 B supply = 3000 B -> at most 11 bursts
        # (initial full bucket included), i.e. ~256/300 B/cycle.
        assert admitted * 256 <= 3000 + reg.config.budget_bytes + 256

    def test_oversize_rejected_when_disallowed(self, sim):
        reg = make_regulator(
            sim, window_cycles=100, budget_bytes=100, allow_oversize=False
        )
        assert not reg.may_issue(txn(256), 0)


class TestMonitorHalf:
    def test_monitor_attached_on_bind(self, sim, mini_norefresh):
        reg = make_regulator(sim, window_cycles=128, budget_bytes=4096)
        port = mini_norefresh.add_port("m0", regulator=reg)
        assert reg.monitor is not None
        assert reg.monitor.window_cycles == 128
        assert reg.monitor.port is port


class TestReconfiguration:
    def test_budget_applies_after_latency(self, sim):
        reg = make_regulator(sim, window_cycles=100, budget_bytes=100,
                             reconfig_latency=7)
        effective = reg.set_budget_bytes(5000, sim.now)
        assert effective == 7
        sim.run(until=10)
        assert reg.budget_bytes == 5000
        assert reg.reconfig_count == 1

    def test_budget_validation(self, sim):
        reg = make_regulator(sim)
        with pytest.raises(RegulationError):
            reg.set_budget_bytes(0, 0)

    def test_release_notifies_port(self, sim, mini_norefresh):
        reg = make_regulator(sim, window_cycles=1000, budget_bytes=64,
                             reconfig_latency=2)
        port = mini_norefresh.add_port("m0", regulator=reg)
        accel = StreamAccelerator(
            sim, port,
            AcceleratorConfig(
                pattern=SequentialPattern(0, 1 << 20, 256),
                burst_beats=16, total_bytes=512,
            ),
        )
        accel.start()
        # With 64 B/window the 256 B bursts only pass via the
        # oversize path once per window; raise the budget mid-run and
        # the run must finish quickly.
        sim.schedule(100, lambda: reg.set_budget_bytes(100_000, sim.now))
        sim.run(until=3000)
        assert accel.done


class TestEnforcedRate:
    @pytest.mark.parametrize("budget,window", [(1600, 1000), (4096, 1024),
                                               (256, 64)])
    def test_long_run_rate_bounded(self, sim, mini_norefresh, budget, window):
        reg = make_regulator(sim, window_cycles=window, budget_bytes=budget)
        port = mini_norefresh.add_port("m0", regulator=reg)
        accel = StreamAccelerator(
            sim, port,
            AcceleratorConfig(
                pattern=SequentialPattern(0, 1 << 20, 256),
                burst_beats=16, total_bytes=None,
            ),
        )
        accel.start()
        horizon = 60 * window
        sim.run(until=horizon)
        moved = port.stats.counter("bytes").value
        configured = budget / window
        # Never above configured rate (small slack for the final
        # in-flight burst landing after the horizon accounting).
        assert moved / horizon <= configured * 1.05
        # And reasonably close to it from below (no pathological
        # undershoot): at least 60% once burst quantization is paid.
        assert moved / horizon >= configured * 0.6
