"""Unit + behaviour tests for the MemGuard software baseline."""

import pytest

from repro.errors import RegulationError
from repro.regulation.memguard import MemGuardConfig, MemGuardRegulator
from repro.traffic.accelerator import AcceleratorConfig, StreamAccelerator
from repro.traffic.patterns import SequentialPattern
from repro.axi.txn import Transaction


def make_regulator(sim, **kwargs):
    defaults = dict(period_cycles=10_000, budget_bytes=10_000,
                    interrupt_latency=100)
    defaults.update(kwargs)
    return MemGuardRegulator(sim, MemGuardConfig(**defaults))


def attach_hog(sim, mini, reg, total_bytes=None, name="acc"):
    port = mini.add_port(name, regulator=reg)
    accel = StreamAccelerator(
        sim, port,
        AcceleratorConfig(
            pattern=SequentialPattern(0, 1 << 20, 256),
            burst_beats=16, total_bytes=total_bytes,
        ),
    )
    return port, accel


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(period_cycles=0),
            dict(budget_bytes=0),
            dict(interrupt_latency=-1),
            dict(tick_overhead=-1),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(RegulationError):
            MemGuardConfig(**kwargs)

    def test_rate(self):
        cfg = MemGuardConfig(period_cycles=250_000, budget_bytes=250_000)
        assert cfg.bandwidth_bytes_per_cycle() == 1.0


class TestThrottling:
    def test_throttles_after_overflow_interrupt(self, sim, mini_norefresh):
        reg = make_regulator(sim, period_cycles=50_000, budget_bytes=4096,
                             interrupt_latency=100)
        port, accel = attach_hog(sim, mini_norefresh, reg)
        accel.start()
        sim.run(until=49_000)
        assert reg.throttled
        assert reg.interrupt_count == 1
        # Traffic passed during the interrupt latency: the PMU counted
        # at least the budget, usually more (the overshoot).
        assert port.stats.counter("bytes").value >= 4096

    def test_released_at_period_boundary(self, sim, mini_norefresh):
        reg = make_regulator(sim, period_cycles=20_000, budget_bytes=4096)
        port, accel = attach_hog(sim, mini_norefresh, reg)
        accel.start()
        sim.run(until=19_999)
        assert reg.throttled
        bytes_before = port.stats.counter("bytes").value
        sim.schedule(25_000, lambda: None)
        sim.run(until=25_000)
        # New period: traffic flows again.
        assert port.stats.counter("bytes").value > bytes_before

    def test_long_run_rate_close_to_budget(self, sim, mini_norefresh):
        period, budget = 10_000, 16_000
        reg = make_regulator(sim, period_cycles=period, budget_bytes=budget,
                             interrupt_latency=100)
        port, accel = attach_hog(sim, mini_norefresh, reg)
        accel.start()
        horizon = 40 * period
        sim.run(until=horizon)
        rate = port.stats.counter("bytes").value / horizon
        configured = budget / period
        # MemGuard overshoots (interrupt latency + in-flight bursts)
        # but stays within a couple of KiB per period.
        assert rate >= configured
        assert rate <= configured + (8 * 256 + 100 * 16) / period

    def test_interrupt_cancelled_by_period_rollover(self, sim, mini_norefresh):
        # Interrupt latency longer than the remaining period: by the
        # time the handler runs, the budget was reloaded -> no stall.
        reg = make_regulator(sim, period_cycles=2_000, budget_bytes=64,
                             interrupt_latency=5_000)
        port, accel = attach_hog(sim, mini_norefresh, reg, total_bytes=256)
        accel.start()
        sim.run(until=1_500)
        sim.schedule(8_000, lambda: None)
        sim.run(until=8_000)
        assert not reg.throttled


class TestAccounting:
    def test_overheads_accumulate(self, sim, mini_norefresh):
        reg = make_regulator(sim, period_cycles=5_000, budget_bytes=1_000_000)
        _port, accel = attach_hog(sim, mini_norefresh, reg, total_bytes=4096)
        accel.start()
        sim.schedule(20_000, lambda: None)
        sim.run(until=20_000)
        assert reg.tick_count == 4
        assert reg.overhead_cycles >= 4 * reg.config.tick_overhead

    def test_next_opportunity_is_period_boundary(self, sim, mini_norefresh):
        reg = make_regulator(sim, period_cycles=10_000, budget_bytes=100)
        txn = Transaction(master="m", is_write=False, addr=0, burst_len=4)
        assert reg.next_opportunity(txn, 3_000) == 10_000


class TestReconfiguration:
    def test_budget_applies_at_next_tick(self, sim, mini_norefresh):
        reg = make_regulator(sim, period_cycles=10_000, budget_bytes=100)
        attach_hog(sim, mini_norefresh, reg, total_bytes=256)[1].start()
        effective = reg.set_budget_bytes(5_000, sim.now)
        assert effective == 10_000
        assert reg.budget_bytes == 100  # not yet
        sim.schedule(10_001, lambda: None)
        sim.run(until=10_001)
        assert reg.budget_bytes == 5_000
        assert reg.reconfig_count == 1

    def test_budget_validation(self, sim):
        reg = make_regulator(sim)
        with pytest.raises(RegulationError):
            reg.set_budget_bytes(0, 0)
