"""Tests for PREM-style mutually-exclusive memory arbitration."""

import pytest

from repro.errors import RegulationError
from repro.regulation.factory import RegulatorSpec, make_regulator
from repro.regulation.prem import PremController, PremRegulator
from repro.soc.experiment import run_experiment
from repro.soc.platform import Platform
from repro.soc.presets import zcu102
from repro.sim.kernel import Simulator


class TestControllerUnit:
    def test_validation(self, sim):
        with pytest.raises(RegulationError):
            PremController(sim, max_hold_cycles=0)

    def test_first_requester_gets_token(self, sim, mini_norefresh):
        controller = PremController(sim)
        a = PremRegulator(controller)
        mini_norefresh.add_port("a", regulator=a)
        from repro.axi.txn import Transaction

        txn = Transaction(master="a", is_write=False, addr=0, burst_len=4)
        assert a.may_issue(txn, 0)
        assert controller.holds(a)

    def test_token_mutual_exclusion(self, sim, mini_norefresh):
        controller = PremController(sim)
        a = PremRegulator(controller)
        b = PremRegulator(controller)
        port_a = mini_norefresh.add_port("a", regulator=a)
        mini_norefresh.add_port("b", regulator=b)
        from repro.axi.txn import Transaction

        # Keep "a" wanting the token: give it a queued transaction.
        txn_a = Transaction(master="a", is_write=False, addr=0, burst_len=4)
        port_a.submit(txn_a)
        assert a.may_issue(txn_a, 0)
        txn_b = Transaction(master="b", is_write=False, addr=0, burst_len=4)
        assert not b.may_issue(txn_b, 1)

    def test_expired_holder_preempted(self, sim, mini_norefresh):
        controller = PremController(sim, max_hold_cycles=100)
        a = PremRegulator(controller)
        b = PremRegulator(controller)
        port_a = mini_norefresh.add_port("a", regulator=a)
        port_b = mini_norefresh.add_port("b", regulator=b)
        from repro.axi.txn import Transaction

        port_a.submit(Transaction(master="a", is_write=False, addr=0,
                                  burst_len=4))
        port_b.submit(Transaction(master="b", is_write=False, addr=0,
                                  burst_len=4))
        assert a.may_issue(
            Transaction(master="a", is_write=False, addr=0, burst_len=4), 0
        )
        # Before expiry "b" is refused; after expiry it preempts.
        assert not b.may_issue(
            Transaction(master="b", is_write=False, addr=0, burst_len=4), 50
        )
        assert b.may_issue(
            Transaction(master="b", is_write=False, addr=0, burst_len=4), 150
        )
        assert controller.holds(b)


class TestFactory:
    def test_requires_controller(self, sim):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            make_regulator(RegulatorSpec(kind="prem"), sim)

    def test_with_controller(self, sim):
        controller = PremController(sim)
        reg = make_regulator(
            RegulatorSpec(kind="prem"), sim, prem_controller=controller
        )
        assert isinstance(reg, PremRegulator)


class TestPremSystem:
    def _run(self, hogs=4, hold=1024):
        spec = RegulatorSpec(kind="prem", prem_hold_cycles=hold)
        return run_experiment(
            zcu102(num_accels=hogs, cpu_work=1500, accel_regulator=spec)
        )

    def test_platform_builds_shared_controller(self):
        spec = RegulatorSpec(kind="prem")
        platform = Platform(
            zcu102(num_accels=2, cpu_work=100, accel_regulator=spec)
        )
        assert platform.prem_controller is not None
        regs = [platform.regulators[f"acc{i}"] for i in range(2)]
        assert all(r.controller is platform.prem_controller for r in regs)

    def test_prem_protects_critical(self):
        unreg = run_experiment(zcu102(num_accels=4, cpu_work=1500))
        prem = self._run()
        assert prem.critical_runtime() < unreg.critical_runtime()

    def test_all_hogs_make_progress(self):
        result = self._run()
        for i in range(4):
            assert result.master(f"acc{i}").completed > 0

    def test_hold_bound_rotates_token(self):
        result = self._run(hold=512)
        platform = result.platform
        assert platform.prem_controller.grants > 4  # many rotations
        # Round-robin rotation keeps hog shares roughly equal.
        rates = [
            result.master(f"acc{i}").bandwidth_bytes_per_cycle
            for i in range(4)
        ]
        assert max(rates) < min(rates) * 1.5
