"""Unit + property tests for the token bucket."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import RegulationError
from repro.regulation.token_bucket import TokenBucket


class TestBasics:
    def test_starts_full_by_default(self):
        tb = TokenBucket(capacity=100, refill_amount=10, refill_period=50)
        assert tb.tokens_at(0) == 100

    def test_initial_tokens(self):
        tb = TokenBucket(100, 10, 50, initial=5)
        assert tb.tokens_at(0) == 5

    def test_consume_and_refill(self):
        tb = TokenBucket(100, 40, 50)
        assert tb.try_consume(100, 0)
        assert tb.tokens_at(0) == 0
        assert tb.tokens_at(49) == 0
        assert tb.tokens_at(50) == 40
        assert tb.tokens_at(149) == 80

    def test_refill_caps_at_capacity(self):
        tb = TokenBucket(100, 40, 50)
        tb.try_consume(10, 0)
        assert tb.tokens_at(1000) == 100

    def test_failed_consume_leaves_tokens(self):
        tb = TokenBucket(100, 10, 50, initial=30)
        assert not tb.try_consume(31, 0)
        assert tb.tokens_at(0) == 30

    def test_force_consume_clamps(self):
        tb = TokenBucket(100, 10, 50, initial=5)
        tb.force_consume(50, 0)
        assert tb.tokens_at(0) == 0

    def test_force_consume_with_debt_goes_negative(self):
        tb = TokenBucket(100, 10, 50, initial=5)
        tb.force_consume(50, 0, allow_debt=True)
        assert tb.tokens_at(0) == -45
        # Refills repay the debt before balance accrues.
        assert tb.tokens_at(250) == 5

    def test_next_available_accounts_for_debt(self):
        tb = TokenBucket(100, 10, 50, initial=0)
        tb.force_consume(20, 0, allow_debt=True)
        # Needs 30 tokens of refill: 3 periods.
        assert tb.next_available(10, 0) == 150

    def test_time_cannot_go_backwards(self):
        tb = TokenBucket(100, 10, 50)
        tb.tokens_at(100)
        with pytest.raises(RegulationError):
            tb.tokens_at(99)


class TestNextAvailable:
    def test_immediately_available(self):
        tb = TokenBucket(100, 10, 50)
        assert tb.next_available(100, 7) == 7

    def test_waits_whole_periods(self):
        tb = TokenBucket(100, 10, 50, initial=0, start=0)
        # Needs 25 tokens: 3 refills of 10 -> ready at cycle 150.
        assert tb.next_available(25, 0) == 150

    def test_partial_progress_counted(self):
        tb = TokenBucket(100, 10, 50, initial=5)
        assert tb.next_available(15, 0) == 50

    def test_request_above_capacity_rejected(self):
        tb = TokenBucket(100, 10, 50)
        with pytest.raises(RegulationError):
            tb.next_available(101, 0)

    def test_never_refilling_bucket_rejected(self):
        tb = TokenBucket(100, 0, 50, initial=0)
        with pytest.raises(RegulationError):
            tb.next_available(1, 0)

    def test_prediction_is_exact(self):
        tb = TokenBucket(64, 16, 10, initial=0)
        at = tb.next_available(40, 3)
        assert tb.tokens_at(at) >= 40
        probe = TokenBucket(64, 16, 10, initial=0)
        assert probe.tokens_at(max(0, at - 10)) < 40


class TestNextAvailableEdges:
    """Edge cases around debt, degenerate refills and saturation."""

    def test_zero_amount_is_immediate(self):
        tb = TokenBucket(100, 10, 50, initial=0)
        assert tb.next_available(0, 33) == 33

    def test_deep_debt_multi_period(self):
        # Debt of 95 + request of 10: 105 tokens of refill = 11 periods.
        tb = TokenBucket(100, 10, 50, initial=5)
        tb.force_consume(100, 0, allow_debt=True)
        assert tb.tokens_at(0) == -95
        assert tb.next_available(10, 0) == 11 * 50

    def test_debt_prediction_is_exact(self):
        tb = TokenBucket(64, 16, 10, initial=0)
        tb.force_consume(40, 0, allow_debt=True)
        at = tb.next_available(24, 0)
        probe = TokenBucket(64, 16, 10, initial=0)
        probe.force_consume(40, 0, allow_debt=True)
        assert probe.tokens_at(at) >= 24
        probe2 = TokenBucket(64, 16, 10, initial=0)
        probe2.force_consume(40, 0, allow_debt=True)
        assert probe2.tokens_at(at - 10) < 24

    def test_zero_refill_satisfiable_from_balance(self):
        # refill_amount == 0 only raises when a wait would be needed.
        tb = TokenBucket(100, 0, 50, initial=30)
        assert tb.next_available(30, 5) == 5
        with pytest.raises(RegulationError):
            tb.next_available(31, 5)

    def test_debt_with_zero_refill_rejected(self):
        tb = TokenBucket(100, 0, 50, initial=10)
        tb.force_consume(10, 0, allow_debt=True)
        with pytest.raises(RegulationError):
            tb.next_available(1, 0)

    def test_refill_smaller_than_amount_needs_ceil_periods(self):
        # Fractional periods don't exist: 7 tokens at 3/period -> 3
        # periods, not 2.33.
        tb = TokenBucket(100, 3, 20, initial=0)
        assert tb.next_available(7, 0) == 60

    def test_saturated_bucket_is_always_immediate(self):
        tb = TokenBucket(100, 10, 50)
        # Long idle: balance saturates at capacity, never beyond --
        # a full-capacity request is still immediately grantable.
        assert tb.tokens_at(10_000) == 100
        assert tb.next_available(100, 10_000) == 10_000

    def test_midperiod_now_rounds_to_boundary(self):
        # Asking mid-period must land on the *next* whole boundary
        # relative to the bucket's refill anchor, not now + period.
        tb = TokenBucket(100, 10, 50, initial=0)
        assert tb.next_available(10, 37) == 50

    def test_oversized_request_rejected_even_when_in_debt(self):
        tb = TokenBucket(100, 10, 50, initial=0)
        tb.force_consume(50, 0, allow_debt=True)
        with pytest.raises(RegulationError):
            tb.next_available(101, 0)


class TestHorizon:
    """The pure boundary probe the fast-forward engine leans on."""

    def test_first_boundary_strictly_after_now(self):
        tb = TokenBucket(100, 10, 50)
        assert tb.horizon(0) == 50
        assert tb.horizon(49) == 50
        assert tb.horizon(50) == 100

    def test_pure_no_state_advance(self):
        tb = TokenBucket(100, 40, 50)
        tb.try_consume(100, 0)
        tb.horizon(499)
        # A mutating read at an earlier cycle still succeeds: horizon
        # must not have advanced the bucket clock.
        assert tb.tokens_at(50) == 40

    def test_tracks_refill_anchor_after_advance(self):
        tb = TokenBucket(100, 10, 50, initial=0)
        tb.tokens_at(120)  # anchor moves to 100
        assert tb.horizon(120) == 150
        assert tb.horizon(150) == 200

    @given(
        period=st.integers(1, 500),
        advance=st.integers(0, 5_000),
        probe=st.integers(0, 5_000),
    )
    @settings(max_examples=150, deadline=None)
    def test_horizon_property(self, period, advance, probe):
        tb = TokenBucket(100, 10, period)
        tb.tokens_at(advance)
        now = advance + probe
        at = tb.horizon(now)
        assert at > now
        assert at - now <= period
        # Boundary alignment relative to the anchor.
        assert (at - tb._last_refill) % period == 0


class TestReconfigure:
    def test_shrink_clamps_tokens(self):
        tb = TokenBucket(100, 10, 50)
        tb.reconfigure(0, capacity=30)
        assert tb.tokens_at(0) == 30

    def test_refill_amount_change(self):
        tb = TokenBucket(100, 10, 50, initial=0)
        tb.reconfigure(0, refill_amount=100)
        assert tb.tokens_at(50) == 100

    def test_invalid_values_rejected(self):
        tb = TokenBucket(100, 10, 50)
        with pytest.raises(RegulationError):
            tb.reconfigure(0, capacity=0)
        with pytest.raises(RegulationError):
            tb.reconfigure(0, refill_amount=-1)


class TestConstructionValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(capacity=0, refill_amount=1, refill_period=1),
            dict(capacity=10, refill_amount=-1, refill_period=1),
            dict(capacity=10, refill_amount=1, refill_period=0),
            dict(capacity=10, refill_amount=1, refill_period=1, initial=11),
        ],
    )
    def test_rejected(self, kwargs):
        with pytest.raises(RegulationError):
            TokenBucket(**kwargs)


class TestInvariantProperties:
    @given(
        capacity=st.integers(1, 10_000),
        refill=st.integers(0, 5_000),
        period=st.integers(1, 1_000),
        ops=st.lists(
            st.tuples(st.integers(0, 500), st.integers(0, 2_000)),
            max_size=60,
        ),
    )
    @settings(max_examples=150, deadline=None)
    def test_tokens_bounded_and_conservation(self, capacity, refill, period, ops):
        tb = TokenBucket(capacity, refill, period)
        now = 0
        consumed = 0
        for amount, advance in ops:
            now += advance
            if tb.try_consume(min(amount, capacity), now):
                consumed += min(amount, capacity)
            tokens = tb.tokens_at(now)
            assert 0 <= tokens <= capacity
        # Conservation: total consumed cannot exceed the initial fill
        # plus everything refilled over the elapsed whole periods.
        max_supply = capacity + (now // period) * refill
        assert consumed <= max_supply

    @given(
        amount=st.integers(1, 100),
        initial=st.integers(0, 100),
        refill=st.integers(1, 50),
        period=st.integers(1, 100),
    )
    @settings(max_examples=150, deadline=None)
    def test_next_available_is_tight(self, amount, initial, refill, period):
        tb = TokenBucket(100, refill, period, initial=initial)
        at = tb.next_available(amount, 0)
        # Sufficient at the predicted time...
        probe = TokenBucket(100, refill, period, initial=initial)
        assert probe.tokens_at(at) >= amount
        # ...and (when a wait happened) insufficient one period before.
        if at > 0:
            probe2 = TokenBucket(100, refill, period, initial=initial)
            assert probe2.tokens_at(max(0, at - period)) < amount
