"""Tests for TDMA regulation."""

import pytest

from repro.errors import RegulationError
from repro.regulation.factory import RegulatorSpec, make_regulator
from repro.regulation.tdma import TdmaRegulator, TdmaSchedule
from repro.soc.experiment import run_experiment
from repro.soc.platform import Platform
from repro.soc.presets import zcu102
from repro.axi.txn import Transaction


def txn(beats=16):
    return Transaction(master="m", is_write=False, addr=0, burst_len=beats)


class TestTdmaSchedule:
    def test_slot_at(self):
        sched = TdmaSchedule(slot_cycles=100, num_slots=4)
        assert sched.frame_cycles == 400
        assert sched.slot_at(0) == 0
        assert sched.slot_at(99) == 0
        assert sched.slot_at(100) == 1
        assert sched.slot_at(399) == 3
        assert sched.slot_at(400) == 0

    def test_slot_start_future_slot(self):
        sched = TdmaSchedule(100, 4)
        assert sched.slot_start(2, 0) == 200
        assert sched.slot_start(2, 250) == 250   # active now
        assert sched.slot_start(2, 300) == 600   # passed; next frame

    def test_slot_start_validation(self):
        sched = TdmaSchedule(100, 4)
        with pytest.raises(RegulationError):
            sched.slot_start(4, 0)

    def test_cycles_left(self):
        sched = TdmaSchedule(100, 4)
        assert sched.cycles_left_in_slot(0) == 100
        assert sched.cycles_left_in_slot(130) == 70

    def test_validation(self):
        with pytest.raises(RegulationError):
            TdmaSchedule(0, 4)
        with pytest.raises(RegulationError):
            TdmaSchedule(100, 0)


class TestTdmaRegulator:
    def test_admits_only_in_own_slot(self):
        sched = TdmaSchedule(100, 4)
        reg = TdmaRegulator(sched, slot_index=1)
        assert not reg.may_issue(txn(), 50)    # slot 0
        assert reg.may_issue(txn(), 110)       # slot 1
        assert not reg.may_issue(txn(), 250)   # slot 2

    def test_burst_must_fit_in_slot(self):
        sched = TdmaSchedule(100, 2)
        reg = TdmaRegulator(sched, slot_index=0)
        assert reg.may_issue(txn(beats=16), 80)     # 20 cycles left >= 16
        assert not reg.may_issue(txn(beats=16), 90)  # only 10 left

    def test_overslot_burst_admitted_at_slot_start(self):
        sched = TdmaSchedule(10, 2)
        reg = TdmaRegulator(sched, slot_index=0)
        big = txn(beats=64)
        assert reg.may_issue(big, 0)
        assert not reg.may_issue(big, 5)

    def test_next_opportunity(self):
        sched = TdmaSchedule(100, 4)
        reg = TdmaRegulator(sched, slot_index=1)
        assert reg.next_opportunity(txn(), 0) == 100
        assert reg.next_opportunity(txn(), 300) == 500
        # Blocked inside the slot by the fit check: next frame.
        assert reg.next_opportunity(txn(beats=16), 190) == 500

    def test_slot_validation(self):
        sched = TdmaSchedule(100, 2)
        with pytest.raises(RegulationError):
            TdmaRegulator(sched, slot_index=2)

    def test_time_share(self):
        sched = TdmaSchedule(100, 5)
        assert TdmaRegulator(sched, 0).time_share == 0.2


class TestTdmaFactoryAndPlatform:
    def test_factory_requires_binding(self, sim):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            make_regulator(RegulatorSpec(kind="tdma"), sim)

    def test_factory_with_binding(self, sim):
        sched = TdmaSchedule(100, 4)
        reg = make_regulator(
            RegulatorSpec(kind="tdma"), sim, tdma_binding=(sched, 2)
        )
        assert isinstance(reg, TdmaRegulator)
        assert reg.slot_index == 2

    def test_platform_assigns_distinct_slots(self):
        spec = RegulatorSpec(kind="tdma", window_cycles=512, tdma_slots=8)
        platform = Platform(
            zcu102(num_accels=4, cpu_work=100, accel_regulator=spec)
        )
        slots = [
            platform.regulators[f"acc{i}"].slot_index for i in range(4)
        ]
        assert sorted(slots) == [0, 1, 2, 3]
        assert platform.tdma_schedule.num_slots == 8

    def test_platform_auto_sizes_frame(self):
        spec = RegulatorSpec(kind="tdma", window_cycles=512)
        platform = Platform(
            zcu102(num_accels=3, cpu_work=100, accel_regulator=spec)
        )
        assert platform.tdma_schedule.num_slots == 3

    def test_tdma_bounds_time_share(self):
        # 4 hogs, 8-slot frame: each gets 1/8 of the timeline, so at
        # most ~1/8 of the achievable bandwidth.
        spec = RegulatorSpec(kind="tdma", window_cycles=512, tdma_slots=8)
        result = run_experiment(
            zcu102(num_accels=4, cpu_work=1500, accel_regulator=spec)
        )
        for i in range(4):
            rate = result.master(f"acc{i}").bandwidth_bytes_per_cycle
            assert rate <= 16.0 / 8 * 1.10

    def test_tdma_protects_critical(self):
        spec = RegulatorSpec(kind="tdma", window_cycles=512, tdma_slots=8)
        unreg = run_experiment(zcu102(num_accels=4, cpu_work=1500))
        tdma = run_experiment(
            zcu102(num_accels=4, cpu_work=1500, accel_regulator=spec)
        )
        assert tdma.critical_runtime() < unreg.critical_runtime()
