"""Unit tests for NoRegulation, StaticQosRegulator and the factory."""

import pytest

from repro.errors import ConfigError, RegulationError
from repro.axi.txn import Transaction
from repro.regulation.factory import KINDS, RegulatorSpec, make_regulator
from repro.regulation.memguard import MemGuardRegulator
from repro.regulation.noreg import NoRegulation
from repro.regulation.static_qos import StaticQosRegulator
from repro.regulation.tightly_coupled import TightlyCoupledRegulator


def txn(qos=0):
    return Transaction(master="m", is_write=False, addr=0, burst_len=4, qos=qos)


class TestNoRegulation:
    def test_always_admits(self, sim):
        reg = NoRegulation()
        for now in (0, 5, 1000):
            assert reg.may_issue(txn(), now)
        assert reg.next_opportunity(txn(), 7) == 7

    def test_no_budget_interface(self, sim):
        with pytest.raises(RegulationError):
            NoRegulation().set_budget_bytes(100, 0)

    def test_monitor_window_attached(self, sim, mini_norefresh):
        reg = NoRegulation(monitor_window=256)
        mini_norefresh.add_port("m0", regulator=reg)
        assert reg.monitor is not None
        assert reg.monitor.window_cycles == 256

    def test_no_monitor_by_default(self, sim, mini_norefresh):
        reg = NoRegulation()
        mini_norefresh.add_port("m0", regulator=reg)
        assert reg.monitor is None


class TestStaticQos:
    def test_stamps_qos_on_admission(self, sim):
        reg = StaticQosRegulator(qos=11)
        t = txn(qos=0)
        assert reg.may_issue(t, 0)
        assert t.qos == 11

    def test_validation(self):
        with pytest.raises(RegulationError):
            StaticQosRegulator(qos=16)

    def test_never_denies(self, sim):
        reg = StaticQosRegulator(qos=15)
        assert all(reg.may_issue(txn(), now) for now in range(5))


class TestFactory:
    def test_none_yields_none(self, sim):
        assert make_regulator(None, sim) is None
        assert make_regulator(RegulatorSpec(kind="none"), sim) is None

    def test_kinds_constructed(self, sim):
        assert isinstance(
            make_regulator(RegulatorSpec(kind="noreg"), sim), NoRegulation
        )
        assert isinstance(
            make_regulator(RegulatorSpec(kind="static_qos", qos=9), sim),
            StaticQosRegulator,
        )
        assert isinstance(
            make_regulator(RegulatorSpec(kind="tightly_coupled"), sim),
            TightlyCoupledRegulator,
        )
        assert isinstance(
            make_regulator(RegulatorSpec(kind="memguard"), sim),
            MemGuardRegulator,
        )

    def test_spec_fields_forwarded(self, sim):
        spec = RegulatorSpec(
            kind="tightly_coupled",
            window_cycles=512,
            budget_bytes=2048,
            carryover_windows=2,
            feedback_delay=64,
            reconfig_latency=9,
        )
        reg = make_regulator(spec, sim)
        assert reg.config.window_cycles == 512
        assert reg.config.budget_bytes == 2048
        assert reg.config.carryover_windows == 2
        assert reg.config.feedback_delay == 64
        assert reg.config.reconfig_latency == 9

    def test_memguard_fields_forwarded(self, sim):
        spec = RegulatorSpec(
            kind="memguard", period_cycles=99_000, budget_bytes=7,
            interrupt_latency=123,
        )
        reg = make_regulator(spec, sim)
        assert reg.config.period_cycles == 99_000
        assert reg.config.budget_bytes == 7
        assert reg.config.interrupt_latency == 123

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            RegulatorSpec(kind="fancy")

    def test_rate_helper(self):
        spec = RegulatorSpec(kind="tightly_coupled", window_cycles=100,
                             budget_bytes=50)
        assert spec.bandwidth_bytes_per_cycle() == 0.5
        with pytest.raises(ConfigError):
            RegulatorSpec(kind="noreg").bandwidth_bytes_per_cycle()

    def test_kind_list_stable(self):
        assert set(KINDS) == {
            "none", "noreg", "tightly_coupled", "memguard", "static_qos",
            "tdma", "prem",
        }
