"""Tests for per-channel (read/write) selective regulation."""

import pytest

from repro.errors import RegulationError
from repro.regulation.tightly_coupled import (
    TightlyCoupledConfig,
    TightlyCoupledRegulator,
)
from repro.traffic.accelerator import AcceleratorConfig, StreamAccelerator
from repro.traffic.patterns import SequentialPattern
from repro.axi.txn import Transaction


def txn(is_write, nbytes=256):
    return Transaction(
        master="m", is_write=is_write, addr=0, burst_len=nbytes // 16,
        bytes_per_beat=16,
    )


class TestConfig:
    def test_at_least_one_channel(self):
        with pytest.raises(RegulationError):
            TightlyCoupledConfig(regulate_reads=False, regulate_writes=False)


class TestSelectiveAdmission:
    def test_unregulated_writes_pass_freely(self, sim):
        reg = TightlyCoupledRegulator(
            sim,
            TightlyCoupledConfig(
                window_cycles=100, budget_bytes=256, regulate_writes=False
            ),
        )
        # Exhaust the read budget.
        read = txn(is_write=False)
        assert reg.may_issue(read, 0)
        reg.charge(read, 0)
        assert not reg.may_issue(txn(is_write=False), 0)
        # Writes still sail through, uncharged.
        for _ in range(5):
            write = txn(is_write=True)
            assert reg.may_issue(write, 0)
            reg.charge(write, 0)
        assert reg.tokens_now() == 0  # reads spent it; writes did not

    def test_unregulated_reads_pass_freely(self, sim):
        reg = TightlyCoupledRegulator(
            sim,
            TightlyCoupledConfig(
                window_cycles=100, budget_bytes=256, regulate_reads=False
            ),
        )
        write = txn(is_write=True)
        reg.charge(write, 0)
        assert not reg.may_issue(txn(is_write=True), 0)
        assert reg.may_issue(txn(is_write=False), 0)

    def test_monitor_counts_both_channels(self, sim):
        reg = TightlyCoupledRegulator(
            sim,
            TightlyCoupledConfig(
                window_cycles=100, budget_bytes=10_000, regulate_writes=False
            ),
        )
        reg.charge(txn(is_write=False), 0)
        reg.charge(txn(is_write=True), 0)
        assert reg.charged_bytes == 512  # the IP's monitor sees both


class TestSelectiveSystem:
    def test_read_only_regulation_of_mixed_hog(self, sim, mini_norefresh):
        reg = TightlyCoupledRegulator(
            sim,
            TightlyCoupledConfig(
                window_cycles=256, budget_bytes=256, regulate_writes=False
            ),
        )
        port = mini_norefresh.add_port("mix", regulator=reg)
        accel = StreamAccelerator(
            sim,
            port,
            AcceleratorConfig(
                pattern=SequentialPattern(0, 1 << 20, 256),
                burst_beats=16,
                write_ratio=0.5,
            ),
        )
        accel.start()
        horizon = 100_000
        sim.run(until=horizon)
        # Reads are held to ~1 B/cycle; writes are free, so the total
        # clearly exceeds the read budget alone.
        total_rate = port.stats.counter("bytes").value / horizon
        read_budget_rate = 256 / 256
        assert total_rate > read_budget_rate * 1.5
