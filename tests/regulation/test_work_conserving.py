"""Tests for CMRI-style work-conserving injection."""

import pytest

from repro.regulation.factory import RegulatorSpec
from repro.regulation.tightly_coupled import (
    TightlyCoupledConfig,
    TightlyCoupledRegulator,
)
from repro.soc.experiment import PlatformResult
from repro.soc.platform import Platform
from repro.soc.presets import zcu102
from repro.axi.txn import Transaction


def txn(nbytes=256):
    return Transaction(
        master="m", is_write=False, addr=0, burst_len=nbytes // 16,
        bytes_per_beat=16,
    )


def make_wc_regulator(sim, idle, **kwargs):
    defaults = dict(window_cycles=100, budget_bytes=256, work_conserving=True)
    defaults.update(kwargs)
    reg = TightlyCoupledRegulator(sim, TightlyCoupledConfig(**defaults))
    reg.attach_idle_probe(idle)
    return reg


class TestInjectionUnit:
    def test_injects_when_idle_and_out_of_credit(self, sim):
        reg = make_wc_regulator(sim, idle=lambda: True)
        reg.charge(txn(256), 0)  # budget gone
        t = txn(256)
        assert reg.may_issue(t, 10)  # idle -> injected
        reg.charge(t, 10)
        assert reg.injected_transactions == 1
        assert reg.injected_bytes == 256

    def test_no_injection_when_busy(self, sim):
        reg = make_wc_regulator(sim, idle=lambda: False)
        reg.charge(txn(256), 0)
        assert not reg.may_issue(txn(256), 10)

    def test_injection_does_not_consume_credit(self, sim):
        reg = make_wc_regulator(sim, idle=lambda: True)
        reg.charge(txn(256), 0)
        tokens_before = reg.tokens_now()
        t = txn(256)
        assert reg.may_issue(t, 0)
        reg.charge(t, 0)
        assert reg.tokens_now() == tokens_before

    def test_credit_admission_charges_even_after_stale_mark(self, sim):
        # A txn marked for injection but re-evaluated after replenish
        # must be charged normally.
        reg = make_wc_regulator(sim, idle=lambda: True)
        reg.charge(txn(256), 0)
        t = txn(256)
        assert reg.may_issue(t, 10)   # injection mark set
        # Window rolls; re-evaluation admits by credit now.
        assert reg.may_issue(t, 100)
        reg.charge(t, 100)
        assert reg.injected_transactions == 0
        assert reg.charged_bytes == 2 * 256

    def test_no_probe_means_no_injection(self, sim):
        reg = TightlyCoupledRegulator(
            sim,
            TightlyCoupledConfig(
                window_cycles=100, budget_bytes=256, work_conserving=True
            ),
        )
        reg.charge(txn(256), 0)
        assert not reg.may_issue(txn(256), 10)

    def test_poll_shortens_next_opportunity(self, sim):
        reg = make_wc_regulator(sim, idle=lambda: False, window_cycles=1000)
        reg.charge(txn(256), 0)
        assert reg.next_opportunity(txn(256), 5) == 5 + reg.INJECT_POLL_CYCLES

    def test_without_wc_next_opportunity_is_credit_based(self, sim):
        reg = TightlyCoupledRegulator(
            sim, TightlyCoupledConfig(window_cycles=1000, budget_bytes=256)
        )
        reg.charge(txn(256), 0)
        assert reg.next_opportunity(txn(256), 5) == 1000


class TestInjectionSystem:
    def _run(self, work_conserving):
        spec = RegulatorSpec(
            kind="tightly_coupled",
            window_cycles=256,
            budget_bytes=410,
            work_conserving=work_conserving,
        )
        platform = Platform(
            zcu102(num_accels=4, cpu_work=1500, accel_regulator=spec)
        )
        elapsed = platform.run(4_000_000)
        return platform, PlatformResult(platform, elapsed)

    def test_injection_raises_throughput(self):
        _p0, plain = self._run(False)
        p1, conserving = self._run(True)
        bw_plain = sum(
            plain.master(f"acc{i}").bandwidth_bytes_per_cycle for i in range(4)
        )
        bw_wc = sum(
            conserving.master(f"acc{i}").bandwidth_bytes_per_cycle
            for i in range(4)
        )
        assert bw_wc > bw_plain * 1.2
        assert sum(r.injected_transactions for r in p1.regulators.values()) > 0

    def test_injection_keeps_critical_impact_bounded(self):
        _p0, plain = self._run(False)
        _p1, conserving = self._run(True)
        # Injection uses idle bandwidth: the critical task's runtime
        # stays close to the plain regulated case.
        assert (
            conserving.critical_runtime() <= plain.critical_runtime() * 1.25
        )

    def test_charged_supply_invariant_still_holds(self):
        p1, result = self._run(True)
        for reg in p1.regulators.values():
            windows = result.elapsed // reg.window_cycles
            supply = reg.config.capacity_bytes + windows * reg.budget_bytes
            assert reg.charged_bytes - reg.injected_bytes <= supply
