"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.axi.interconnect import Interconnect, InterconnectConfig
from repro.axi.port import MasterPort, PortConfig
from repro.axi.txn import Transaction
from repro.dram.controller import DramConfig, DramController
from repro.dram.timing import DramTiming
from repro.sim.kernel import Simulator


@pytest.fixture(autouse=True)
def _reset_txn_ids():
    """Keep transaction ids deterministic per test."""
    Transaction.reset_ids()
    yield
    Transaction.reset_ids()


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


class MiniSystem:
    """A minimal hand-wired memory system for unit tests.

    One interconnect + DRAM controller; ports are added on demand.
    Keeps unit tests independent of the platform layer.
    """

    def __init__(
        self,
        sim: Simulator,
        dram_config: DramConfig = None,
        interconnect_config: InterconnectConfig = None,
    ) -> None:
        self.sim = sim
        self.dram = DramController(sim, dram_config or DramConfig())
        self.interconnect = Interconnect(
            sim, interconnect_config or InterconnectConfig()
        )
        self.interconnect.attach_memory(self.dram)
        self.ports = {}

    def add_port(self, name: str, max_outstanding: int = 8, regulator=None,
                 qos: int = 0) -> MasterPort:
        port = MasterPort(
            self.sim,
            PortConfig(name=name, max_outstanding=max_outstanding, qos=qos),
            regulator=regulator,
        )
        self.interconnect.attach_port(port)
        self.ports[name] = port
        return port


@pytest.fixture
def mini(sim) -> MiniSystem:
    return MiniSystem(sim)


@pytest.fixture
def mini_norefresh(sim) -> MiniSystem:
    """Mini system with refresh disabled (deterministic timing math)."""
    return MiniSystem(
        sim, dram_config=DramConfig(timing=DramTiming(), refresh_enabled=False)
    )
