"""Tests for the CI gate scripts around the timing log.

Covers the kernel-throughput trend gate (``check_bench_trend``) and
the smoke benchmark's corrupt-history quarantine (``load_history``):
both guard ``BENCH_runner.json``, the performance trajectory that
accumulates across PRs.
"""

import json
import os

from scripts.bench_smoke import load_history
from scripts.check_bench_trend import find_regressions
from scripts.check_bench_trend import main as trend_main


def _record(heap, calendar, stamp="t"):
    return {
        "schema": 7,
        "kind": "kernel_throughput",
        "heap_events_s": heap,
        "calendar_events_s": calendar,
        "timestamp": stamp,
    }


class TestFindRegressions:
    def test_too_few_records(self):
        assert find_regressions([], 0.15) == ([], None, None)
        assert find_regressions([_record(100, 200)], 0.15) == ([], None, None)

    def test_other_kinds_ignored(self):
        history = [
            {"kind": "runner_sweep"},
            _record(100_000, 200_000),
            {"kind": "batch_dispatch"},
        ]
        assert find_regressions(history, 0.15) == ([], None, None)

    def test_within_threshold_passes(self):
        history = [_record(100_000, 200_000), _record(90_000, 180_000)]
        regressions, previous, newest = find_regressions(history, 0.15)
        assert regressions == []
        assert previous["heap_events_s"] == 100_000
        assert newest["heap_events_s"] == 90_000

    def test_improvement_passes(self):
        history = [_record(100_000, 200_000), _record(150_000, 400_000)]
        assert find_regressions(history, 0.15)[0] == []

    def test_regression_detected_per_backend(self):
        history = [_record(100_000, 200_000), _record(80_000, 195_000)]
        regressions, _, _ = find_regressions(history, 0.15)
        assert [r[0] for r in regressions] == ["heap_events_s"]
        key, old, new, drop = regressions[0]
        assert (old, new) == (100_000, 80_000)
        assert abs(drop - 0.20) < 1e-9

    def test_newest_vs_previous_only(self):
        # An old regression that already recovered must not re-fire.
        history = [
            _record(100_000, 200_000),
            _record(50_000, 100_000),
            _record(95_000, 190_000),
        ]
        regressions, previous, _ = find_regressions(history, 0.15)
        assert regressions == []
        assert previous["heap_events_s"] == 50_000

    def test_missing_keys_tolerated(self):
        history = [
            {"kind": "kernel_throughput", "heap_events_s": 100_000},
            {"kind": "kernel_throughput", "heap_events_s": 99_000},
        ]
        assert find_regressions(history, 0.15)[0] == []


class TestTrendMain:
    def test_missing_file_passes(self, tmp_path):
        assert trend_main(["--file", str(tmp_path / "absent.json")]) == 0

    def test_unreadable_file_fails(self, tmp_path):
        log = tmp_path / "log.json"
        log.write_text("{not json")
        assert trend_main(["--file", str(log)]) == 1

    def test_regression_fails_and_threshold_is_honoured(self, tmp_path):
        log = tmp_path / "log.json"
        log.write_text(
            json.dumps([_record(100_000, 200_000), _record(80_000, 200_000)])
        )
        assert trend_main(["--file", str(log)]) == 1
        assert trend_main(["--file", str(log), "--threshold", "0.25"]) == 0

    def test_clean_trend_passes(self, tmp_path):
        log = tmp_path / "log.json"
        log.write_text(
            json.dumps([_record(100_000, 200_000), _record(101_000, 210_000)])
        )
        assert trend_main(["--file", str(log)]) == 0


class TestLoadHistoryQuarantine:
    def test_missing_file(self, tmp_path):
        assert load_history(str(tmp_path / "absent.json")) == ([], None)

    def test_valid_history_kept(self, tmp_path):
        log = tmp_path / "log.json"
        records = [_record(1, 2)]
        log.write_text(json.dumps(records))
        assert load_history(str(log)) == (records, None)

    def test_corrupt_json_quarantined(self, tmp_path):
        log = tmp_path / "log.json"
        log.write_text('[{"truncated": ')
        history, quarantined = load_history(str(log))
        assert history == []
        assert quarantined == str(log) + ".corrupt-1"
        assert not log.exists()
        # The evidence survives verbatim.
        assert open(quarantined).read() == '[{"truncated": '

    def test_non_list_json_quarantined(self, tmp_path):
        log = tmp_path / "log.json"
        log.write_text('{"kind": "not-a-list"}')
        history, quarantined = load_history(str(log))
        assert history == []
        assert os.path.exists(quarantined)

    def test_quarantine_suffix_increments(self, tmp_path):
        log = tmp_path / "log.json"
        (tmp_path / "log.json.corrupt-1").write_text("old junk")
        log.write_text("junk")
        _, quarantined = load_history(str(log))
        assert quarantined == str(log) + ".corrupt-2"
        assert open(quarantined).read() == "junk"
