"""Tests for the benchmark harness helpers."""

import os

import pytest

from benchmarks.common import (
    CPU_WORK,
    PEAK,
    RESULTS_DIR,
    loaded_config,
    memguard_spec,
    report,
    run_open,
    tc_spec,
)


class TestSpecHelpers:
    def test_tc_spec_budget_math(self):
        spec = tc_spec(0.10, window_cycles=1000)
        assert spec.kind == "tightly_coupled"
        assert spec.budget_bytes == round(0.10 * PEAK * 1000)

    def test_tc_spec_forwards_kwargs(self):
        spec = tc_spec(0.10, window_cycles=256, work_conserving=True,
                       carryover_windows=2)
        assert spec.work_conserving
        assert spec.carryover_windows == 2

    def test_memguard_spec_budget_math(self):
        spec = memguard_spec(0.25, period_cycles=10_000)
        assert spec.kind == "memguard"
        assert spec.budget_bytes == round(0.25 * PEAK * 10_000)

    def test_minimum_budget_is_one_byte(self):
        spec = tc_spec(1e-9, window_cycles=10)
        assert spec.budget_bytes == 1


class TestConfigHelpers:
    def test_loaded_config_shape(self):
        config = loaded_config(num_accels=3)
        names = [m.name for m in config.masters]
        assert names == ["cpu0", "acc0", "acc1", "acc2"]
        assert config.masters[0].work == CPU_WORK

    def test_run_open_runs_to_horizon(self):
        result = run_open(loaded_config(num_accels=1), horizon=20_000)
        assert result.elapsed == 20_000


class TestReport:
    def test_report_prints_and_persists(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setattr(
            "benchmarks.common.RESULTS_DIR", str(tmp_path)
        )
        rows = [{"a": 1, "b": 2.5}]
        text = report("unit_test", rows, "Title")
        out = capsys.readouterr().out
        assert "Title" in out and "Title" in text
        saved = (tmp_path / "unit_test.txt").read_text()
        assert "Title" in saved
        assert "2.5" in saved
