"""Tests for posted writes and read-priority scheduling."""

import pytest

from repro.errors import ConfigError
from repro.axi.txn import Transaction
from repro.dram.controller import DramConfig
from repro.dram.timing import DramTiming
from repro.sim.kernel import Simulator
from tests.conftest import MiniSystem


def posted_config(**kwargs):
    defaults = dict(
        timing=DramTiming(),
        refresh_enabled=False,
        posted_writes=True,
    )
    defaults.update(kwargs)
    return DramConfig(**defaults)


def submit(port, sim, n=1, is_write=False, base=0, stride=256, burst_len=4):
    txns = []
    for i in range(n):
        txn = Transaction(
            master=port.name, is_write=is_write, addr=base + i * stride,
            burst_len=burst_len, created=sim.now,
        )
        port.submit(txn)
        txns.append(txn)
    return txns


class TestConfigValidation:
    def test_read_priority_needs_posted(self):
        with pytest.raises(ConfigError):
            DramConfig(read_priority=True, posted_writes=False)

    def test_watermark_bounds(self):
        with pytest.raises(ConfigError):
            DramConfig(write_buffer_depth=8, write_drain_watermark=9)
        with pytest.raises(ConfigError):
            DramConfig(write_drain_watermark=0)
        with pytest.raises(ConfigError):
            DramConfig(write_buffer_depth=0)


class TestPostedWrites:
    def test_write_acks_before_device_service(self, sim):
        mini = MiniSystem(sim, dram_config=posted_config())
        port = mini.add_port("m0", max_outstanding=1)
        (write,) = submit(port, sim, is_write=True)
        sim.run()
        # Ack latency: fwd(4) + resp(4) + handshake, far below the
        # ~32-cycle device service of an unposted write.
        assert write.latency <= 12
        assert mini.dram.stats.counter("posted_writes").value == 1

    def test_unposted_write_pays_device_latency(self, sim):
        mini = MiniSystem(
            sim,
            dram_config=DramConfig(timing=DramTiming(), refresh_enabled=False),
        )
        port = mini.add_port("m0", max_outstanding=1)
        (write,) = submit(port, sim, is_write=True)
        sim.run()
        assert write.latency > 30

    def test_drain_still_occupies_bus(self, sim):
        mini = MiniSystem(sim, dram_config=posted_config())
        port = mini.add_port("m0", max_outstanding=8)
        submit(port, sim, n=10, is_write=True)
        sim.run()
        # Keep the sim alive until drains finish accounting.
        assert mini.dram.busy_cycles == 10 * 4  # 4 beats each

    def test_buffer_full_applies_backpressure(self, sim):
        mini = MiniSystem(
            sim,
            dram_config=posted_config(write_buffer_depth=2,
                                      write_drain_watermark=2),
        )
        port = mini.add_port("m0", max_outstanding=16)
        writes = submit(port, sim, n=12, is_write=True, burst_len=16)
        sim.run()
        posted = mini.dram.stats.counter("posted_writes").value
        assert posted < 12  # some writes saw a full buffer
        assert all(w.completed > 0 for w in writes)

    def test_reads_unaffected_by_posting_flag(self, sim):
        mini = MiniSystem(sim, dram_config=posted_config())
        port = mini.add_port("m0", max_outstanding=1)
        (read,) = submit(port, sim, is_write=False)
        sim.run()
        assert read.latency > 30  # full device round trip


class TestReadPriority:
    def _mixed_run(self, read_priority):
        sim = Simulator()
        mini = MiniSystem(
            sim,
            dram_config=posted_config(
                read_priority=read_priority,
                write_buffer_depth=16,
                write_drain_watermark=12,
            ),
        )
        writer = mini.add_port("writer", max_outstanding=8)
        reader = mini.add_port("reader", max_outstanding=2)
        submit(writer, sim, n=40, is_write=True, burst_len=16,
               base=1 << 20)
        reads = submit(reader, sim, n=10, is_write=False, burst_len=4)
        sim.run()
        return sum(r.latency for r in reads) / len(reads)

    def test_read_priority_lowers_read_latency(self):
        plain = self._mixed_run(read_priority=False)
        prioritized = self._mixed_run(read_priority=True)
        assert prioritized < plain
