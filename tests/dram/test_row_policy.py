"""Tests for the closed-page (auto-precharge) row policy."""

import pytest

from repro.errors import ConfigError
from repro.axi.txn import Transaction
from repro.dram.controller import DramConfig
from repro.dram.timing import DramTiming
from repro.sim.kernel import Simulator
from tests.conftest import MiniSystem


def closed_config():
    return DramConfig(
        timing=DramTiming(), refresh_enabled=False, row_policy="closed"
    )


def stream(port, sim, n, stride=256, burst_len=4):
    txns = []
    for i in range(n):
        txn = Transaction(
            master=port.name, is_write=False, addr=i * stride,
            burst_len=burst_len, created=sim.now,
        )
        port.submit(txn)
        txns.append(txn)
    return txns


class TestRowPolicy:
    def test_validation(self):
        with pytest.raises(ConfigError):
            DramConfig(row_policy="adaptive")

    def test_closed_page_never_hits(self, sim):
        mini = MiniSystem(sim, dram_config=closed_config())
        port = mini.add_port("m0", max_outstanding=1)
        stream(port, sim, 8, stride=256)  # same row under open policy
        sim.run()
        stats = mini.dram.stats
        assert stats.counter("row_miss").value == 8
        assert stats.counter("row_hit").value == 0
        assert stats.counter("row_conflict").value == 0

    def test_closed_page_never_conflicts(self, sim):
        mini = MiniSystem(sim, dram_config=closed_config())
        port = mini.add_port("m0", max_outstanding=1)
        # Alternating rows of one bank: conflicts under open policy.
        for addr in (0, 1 << 14, 0, 1 << 14):
            stream(port, sim, 1, stride=0, burst_len=1)
        sim.run()
        assert mini.dram.stats.counter("row_conflict").value == 0

    def test_closed_slower_for_sequential(self, sim):
        mini_closed = MiniSystem(sim, dram_config=closed_config())
        port = mini_closed.add_port("m0", max_outstanding=4)
        txns = stream(port, sim, 50, stride=256)
        sim.run()
        closed_end = max(t.completed for t in txns)

        sim2 = Simulator()
        mini_open = MiniSystem(
            sim2,
            dram_config=DramConfig(timing=DramTiming(), refresh_enabled=False),
        )
        port2 = mini_open.add_port("m0", max_outstanding=4)
        txns2 = stream(port2, sim2, 50, stride=256)
        sim2.run()
        open_end = max(t.completed for t in txns2)
        assert closed_end > open_end

    def test_closed_beats_open_for_pathological_conflicts(self, sim):
        # Ping-pong between two rows of the same bank: open policy
        # pays precharge+activate+cas *serially in the conflict path*,
        # closed pays activate+cas with the precharge hidden after
        # each access.
        def run_policy(policy):
            local_sim = Simulator()
            mini = MiniSystem(
                local_sim,
                dram_config=DramConfig(
                    timing=DramTiming(), refresh_enabled=False,
                    row_policy=policy,
                ),
            )
            port = mini.add_port("m0", max_outstanding=1)
            txns = []
            for i in range(40):
                addr = (i % 2) * (1 << 14)  # two rows, same bank
                txn = Transaction(
                    master="m0", is_write=False, addr=addr, burst_len=1,
                )
                port.submit(txn)
                txns.append(txn)
            local_sim.run()
            return max(t.completed for t in txns)

        assert run_policy("closed") <= run_policy("open")
