"""Unit tests for per-bank DRAM state."""

from repro.dram.bank import Bank
from repro.dram.timing import DramTiming

TIMING = DramTiming(t_cas=10, t_rcd=12, t_rp=14)


class TestClassification:
    def test_first_access_is_miss(self):
        bank = Bank(0)
        assert bank.classify(5) == "miss"

    def test_same_row_is_hit(self):
        bank = Bank(0)
        bank.perform_access(5, 0, TIMING)
        assert bank.classify(5) == "hit"

    def test_other_row_is_conflict(self):
        bank = Bank(0)
        bank.perform_access(5, 0, TIMING)
        assert bank.classify(6) == "conflict"


class TestTiming:
    def test_access_latency_matches_class(self):
        bank = Bank(0)
        assert bank.access_latency(1, TIMING) == TIMING.miss_latency
        bank.perform_access(1, 0, TIMING)
        assert bank.access_latency(1, TIMING) == TIMING.hit_latency
        assert bank.access_latency(2, TIMING) == TIMING.conflict_latency

    def test_perform_access_returns_data_ready_time(self):
        bank = Bank(0)
        done = bank.perform_access(1, 100, TIMING)
        assert done == 100 + TIMING.miss_latency
        assert bank.ready_at() == done

    def test_busy_bank_serializes(self):
        bank = Bank(0)
        first_done = bank.perform_access(1, 0, TIMING)
        second_done = bank.perform_access(1, first_done, TIMING)
        assert second_done == first_done + TIMING.hit_latency


class TestStatsAndRefresh:
    def test_counters(self):
        bank = Bank(0)
        bank.perform_access(1, 0, TIMING)   # miss
        bank.perform_access(1, 50, TIMING)  # hit
        bank.perform_access(2, 99, TIMING)  # conflict
        assert (bank.hits, bank.misses, bank.conflicts) == (1, 1, 1)
        assert bank.accesses == 3
        assert bank.hit_rate == 1 / 3

    def test_hit_rate_empty(self):
        assert Bank(0).hit_rate == 0.0

    def test_precharge_closes_row(self):
        bank = Bank(0)
        bank.perform_access(1, 0, TIMING)
        bank.precharge_all(100, TIMING)
        assert bank.open_row is None
        assert bank.ready_at() >= 100 + TIMING.t_rp
        assert bank.classify(1) == "miss"

    def test_precharge_idle_bank_is_noop(self):
        bank = Bank(0)
        bank.precharge_all(100, TIMING)
        assert bank.ready_at() == 0
