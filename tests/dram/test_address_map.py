"""Unit tests for DRAM address decoding."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigError
from repro.dram.address_map import AddressMap


class TestRowBankCol:
    def test_sequential_addresses_stay_in_row(self):
        amap = AddressMap(num_banks=8, row_bytes=2048)
        bank0, row0 = amap.decode(0)
        bank1, row1 = amap.decode(2047)
        assert (bank0, row0) == (bank1, row1)

    def test_next_row_changes_bank(self):
        amap = AddressMap(num_banks=8, row_bytes=2048)
        bank0, _ = amap.decode(0)
        bank1, _ = amap.decode(2048)
        assert bank1 == (bank0 + 1) % 8

    def test_rows_wrap_banks(self):
        amap = AddressMap(num_banks=4, row_bytes=1024)
        # 4 rows later we are back on bank 0, one row up.
        bank, row = amap.decode(4 * 1024)
        assert (bank, row) == (0, 1)

    def test_same_row_helper(self):
        amap = AddressMap()
        assert amap.same_row(0, 100)
        assert not amap.same_row(0, 4096)


class TestBankInterleaved:
    def test_stripe_rotates_banks(self):
        amap = AddressMap(
            num_banks=4, row_bytes=2048,
            interleave="bank_interleaved", interleave_bytes=256,
        )
        banks = [amap.decode(i * 256)[0] for i in range(8)]
        assert banks == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_row_advances_after_banks_cycle(self):
        amap = AddressMap(
            num_banks=4, row_bytes=1024,
            interleave="bank_interleaved", interleave_bytes=256,
        )
        # Per-bank offset grows by 256 per full bank sweep; row flips
        # after 4 sweeps (1024 / 256).
        _, row_first = amap.decode(0)
        _, row_later = amap.decode(4 * 4 * 256)
        assert row_first == 0
        assert row_later == 1


class TestValidation:
    def test_power_of_two_required(self):
        with pytest.raises(ConfigError):
            AddressMap(num_banks=6)
        with pytest.raises(ConfigError):
            AddressMap(row_bytes=3000)
        with pytest.raises(ConfigError):
            AddressMap(interleave="bank_interleaved", interleave_bytes=100)

    def test_unknown_interleave(self):
        with pytest.raises(ConfigError):
            AddressMap(interleave="xor")

    def test_negative_address(self):
        with pytest.raises(ConfigError):
            AddressMap().decode(-1)


class TestProperties:
    @given(st.integers(0, 2**32 - 1))
    def test_decode_in_range(self, addr):
        amap = AddressMap(num_banks=8, row_bytes=2048)
        bank, row = amap.decode(addr)
        assert 0 <= bank < 8
        assert row >= 0

    @given(st.integers(0, 2**28), st.integers(0, 2047))
    def test_offsets_within_row_decode_identically(self, base, offset):
        amap = AddressMap(num_banks=8, row_bytes=2048)
        row_start = (base // 2048) * 2048
        assert amap.decode(row_start) == amap.decode(row_start + offset)

    @given(st.integers(0, 2**28))
    def test_bank_interleaved_in_range(self, addr):
        amap = AddressMap(
            num_banks=8, row_bytes=2048,
            interleave="bank_interleaved", interleave_bytes=256,
        )
        bank, row = amap.decode(addr)
        assert 0 <= bank < 8
        assert row >= 0
