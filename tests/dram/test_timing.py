"""Unit tests for DRAM timing parameters."""

import pytest

from repro.errors import ConfigError
from repro.dram.timing import DramTiming


class TestDerivedLatencies:
    def test_service_class_ordering(self):
        t = DramTiming()
        assert t.hit_latency < t.miss_latency < t.conflict_latency

    def test_exact_composition(self):
        t = DramTiming(t_cas=10, t_rcd=12, t_rp=14)
        assert t.hit_latency == 10
        assert t.miss_latency == 22
        assert t.conflict_latency == 36

    def test_data_cycles(self):
        t = DramTiming(beat_cycles=2)
        assert t.data_cycles(4) == 8
        with pytest.raises(ConfigError):
            t.data_cycles(0)

    def test_peak_bytes_per_cycle(self):
        t = DramTiming(bus_bytes_per_beat=16, beat_cycles=1)
        assert t.peak_bytes_per_cycle == 16.0
        t2 = DramTiming(bus_bytes_per_beat=16, beat_cycles=2)
        assert t2.peak_bytes_per_cycle == 8.0


class TestValidation:
    def test_core_timings_positive(self):
        with pytest.raises(ConfigError):
            DramTiming(t_cas=0)
        with pytest.raises(ConfigError):
            DramTiming(t_rcd=0)
        with pytest.raises(ConfigError):
            DramTiming(t_rp=0)

    def test_refresh_consistency(self):
        with pytest.raises(ConfigError):
            DramTiming(t_refi=100, t_rfc=100)
        # Disabled refresh (t_refi=0) is allowed with any t_rfc.
        DramTiming(t_refi=0, t_rfc=88)

    def test_negative_turnaround_rejected(self):
        with pytest.raises(ConfigError):
            DramTiming(rw_turnaround=-1)
