"""Unit and behaviour tests for the DRAM controller."""

import pytest

from repro.errors import ConfigError
from repro.axi.txn import Transaction
from repro.dram.address_map import AddressMap
from repro.dram.controller import DramConfig, DramController
from repro.dram.timing import DramTiming
from tests.conftest import MiniSystem


def stream(port, sim, n, stride=256, base=0, burst_len=16):
    txns = []
    for i in range(n):
        txn = Transaction(
            master=port.name, is_write=False, addr=base + i * stride,
            burst_len=burst_len, created=sim.now,
        )
        port.submit(txn)
        txns.append(txn)
    return txns


class TestConfigValidation:
    def test_scheduler_names(self):
        with pytest.raises(ConfigError):
            DramConfig(scheduler="open_page")

    def test_negative_cap(self):
        with pytest.raises(ConfigError):
            DramConfig(frfcfs_cap=-1)


class TestServiceClasses:
    def test_row_hit_counters(self, sim, mini_norefresh):
        port = mini_norefresh.add_port("m0", max_outstanding=1)
        # 8 bursts in the same 2 KiB row: 1 miss + 7 hits.
        stream(port, sim, 8, stride=256)
        sim.run()
        stats = mini_norefresh.dram.stats
        assert stats.counter("row_miss").value == 1
        assert stats.counter("row_hit").value == 7

    def test_row_conflicts_on_revisit(self, sim):
        mini = MiniSystem(
            sim,
            dram_config=DramConfig(
                timing=DramTiming(),
                address_map=AddressMap(num_banks=2, row_bytes=1024),
                refresh_enabled=False,
            ),
        )
        port = mini.add_port("m0", max_outstanding=1)
        # With 2 banks x 1 KiB rows (row:bank:col layout), addresses 0
        # and 2048 are both bank 0 but different rows: after the first
        # miss every access precharges (conflict).
        for addr in (0, 2048, 0, 2048):
            stream(port, sim, 1, base=addr, burst_len=1)
        sim.run()
        stats = mini.dram.stats
        assert stats.counter("row_conflict").value == 3
        assert stats.counter("row_miss").value == 1
        assert stats.counter("row_hit").value == 0

    def test_hit_rate_reporting(self, sim, mini_norefresh):
        port = mini_norefresh.add_port("m0", max_outstanding=1)
        stream(port, sim, 8)
        sim.run()
        assert mini_norefresh.dram.row_hit_rate() == pytest.approx(7 / 8)


class TestBandwidth:
    def test_streaming_sustains_near_peak(self, sim, mini_norefresh):
        port = mini_norefresh.add_port("m0", max_outstanding=8)
        txns = stream(port, sim, 200, stride=256)
        sim.run()
        elapsed = max(t.completed for t in txns)
        nbytes = sum(t.nbytes for t in txns)
        peak = mini_norefresh.dram.timing.peak_bytes_per_cycle
        # Row-hit streaming with deep pipelining: >= 75% of peak.
        assert nbytes / elapsed >= 0.75 * peak

    def test_utilization_accounting(self, sim, mini_norefresh):
        port = mini_norefresh.add_port("m0", max_outstanding=1)
        txns = stream(port, sim, 10, burst_len=4)
        sim.run()
        # 10 bursts x 4 beats x 1 cycle = 40 busy cycles.
        assert mini_norefresh.dram.busy_cycles == 40
        elapsed = max(t.completed for t in txns)
        assert mini_norefresh.dram.utilization(elapsed) == pytest.approx(
            40 / elapsed
        )

    def test_utilization_validates_elapsed(self, sim, mini_norefresh):
        with pytest.raises(ConfigError):
            mini_norefresh.dram.utilization(0)


class TestScheduling:
    def _two_stream_system(self, sim, scheduler, cap=4):
        mini = MiniSystem(
            sim,
            dram_config=DramConfig(
                timing=DramTiming(),
                scheduler=scheduler,
                frfcfs_cap=cap,
                refresh_enabled=False,
            ),
        )
        return mini

    def test_frfcfs_prefers_row_hits(self, sim):
        mini = self._two_stream_system(sim, "frfcfs")
        seq = mini.add_port("seq", max_outstanding=8)
        rnd = mini.add_port("rnd", max_outstanding=8)
        stream(seq, sim, 40, stride=256)           # row-hit friendly
        stream(rnd, sim, 40, stride=4096, base=1 << 20)  # row-hostile
        sim.run()
        assert mini.dram.stats.counter("frfcfs_bypasses").value > 0

    def test_fcfs_never_bypasses(self, sim):
        mini = self._two_stream_system(sim, "fcfs")
        seq = mini.add_port("seq", max_outstanding=8)
        rnd = mini.add_port("rnd", max_outstanding=8)
        stream(seq, sim, 40, stride=256)
        stream(rnd, sim, 40, stride=4096, base=1 << 20)
        sim.run()
        assert mini.dram.stats.counter("frfcfs_bypasses").value == 0

    def test_starvation_cap_bounds_bypasses(self, sim):
        cap = 2
        mini = self._two_stream_system(sim, "frfcfs", cap=cap)
        seq = mini.add_port("seq", max_outstanding=8)
        rnd = mini.add_port("rnd", max_outstanding=2)
        t_seq = stream(seq, sim, 100, stride=256)
        t_rnd = stream(rnd, sim, 10, stride=8192, base=1 << 20)
        sim.run()
        assert all(t.completed > 0 for t in t_rnd)
        # With the cap, the random stream cannot be pushed to the end.
        last_seq = max(t.completed for t in t_seq)
        last_rnd = max(t.completed for t in t_rnd)
        assert last_rnd < last_seq


class TestRefresh:
    def test_refresh_fires_periodically(self, sim, mini):
        port = mini.add_port("m0", max_outstanding=1)
        stream(port, sim, 1, burst_len=1)
        # Refresh events are daemons; keep a foreground event alive at
        # the horizon so the run covers the full interval.
        sim.schedule(10_000, lambda: None)
        sim.run(until=10_000)
        expected = 10_000 // mini.dram.timing.t_refi
        assert mini.dram.stats.counter("refreshes").value == expected

    def test_refresh_closes_rows(self, sim, mini):
        port = mini.add_port("m0", max_outstanding=1)
        stream(port, sim, 1, burst_len=1)
        horizon = mini.dram.timing.t_refi + 10
        sim.schedule(horizon, lambda: None)
        sim.run(until=horizon)
        assert all(b.open_row is None for b in mini.dram.banks)

    def test_disabled_refresh(self, sim, mini_norefresh):
        port = mini_norefresh.add_port("m0", max_outstanding=1)
        stream(port, sim, 1, burst_len=1)
        sim.run(until=100_000)
        assert mini_norefresh.dram.stats.counter("refreshes").value == 0


class TestTurnaround:
    def test_rw_switch_counted(self, sim, mini_norefresh):
        port = mini_norefresh.add_port("m0", max_outstanding=1)
        for i, is_write in enumerate([False, True, False]):
            txn = Transaction(
                master="m0", is_write=is_write, addr=i * 256, burst_len=1,
                created=sim.now,
            )
            port.submit(txn)
        sim.run()
        assert mini_norefresh.dram.stats.counter("turnarounds").value == 2
