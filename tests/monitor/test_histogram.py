"""Unit tests for the log-bucketed latency histogram."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigError
from repro.monitor.histogram import LatencyHistogram


class TestBucketing:
    def test_bucket_floors(self):
        h = LatencyHistogram()
        for v in (0, 1, 2, 3, 4, 7, 8):
            h.record(v)
        floors = dict(h.buckets())
        assert floors[0] == 2   # 0 and 1
        assert floors[2] == 2   # 2, 3
        assert floors[4] == 2   # 4, 7
        assert floors[8] == 1   # 8

    def test_overflow_folds_into_last_bucket(self):
        h = LatencyHistogram(max_exponent=4)
        h.record(10_000)
        floors = dict(h.buckets())
        assert floors[16] == 1

    def test_mean_and_count(self):
        h = LatencyHistogram()
        for v in (10, 20, 30):
            h.record(v)
        assert h.count == 3
        assert h.mean == 20.0

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            LatencyHistogram().record(-1)

    def test_bad_shape_rejected(self):
        with pytest.raises(ConfigError):
            LatencyHistogram(max_exponent=0)


class TestCdf:
    def test_cdf_reaches_one(self):
        h = LatencyHistogram()
        for v in (1, 5, 100):
            h.record(v)
        cdf = h.cdf()
        assert cdf[-1][1] == pytest.approx(1.0)
        fractions = [f for _b, f in cdf]
        assert fractions == sorted(fractions)

    def test_empty_cdf(self):
        assert LatencyHistogram().cdf() == []

    def test_percentile_bound_is_conservative(self):
        h = LatencyHistogram()
        for v in range(1, 101):
            h.record(v)
        bound = h.percentile_bound(95)
        assert bound >= 95

    def test_percentile_bound_validation(self):
        h = LatencyHistogram()
        with pytest.raises(ConfigError):
            h.percentile_bound(0)
        assert h.percentile_bound(50) == 0  # empty histogram

    def test_empty_percentiles_all_zero(self):
        h = LatencyHistogram()
        for pct in (1, 50, 99, 100):
            assert h.percentile_bound(pct) == 0
        assert h.mean == 0.0
        assert h.buckets() == []

    def test_overflow_bucket_accumulates(self):
        h = LatencyHistogram(max_exponent=4)
        for v in (1 << 4, (1 << 4) + 1, 1 << 10, 1 << 30):
            h.record(v)
        assert dict(h.buckets()) == {16: 4}
        # The conservative percentile of a fully-folded population is
        # the overflow bucket's upper edge.
        assert h.percentile_bound(100) == (1 << 5) - 1

    def test_overflow_boundary_split(self):
        h = LatencyHistogram(max_exponent=4)
        h.record((1 << 4) - 1)  # last value of the ordinary range
        h.record(1 << 4)        # first folded value
        buckets = dict(h.buckets())
        assert buckets[8] == 1
        assert buckets[16] == 1


class TestMerge:
    def test_merge_combines_populations(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        a.record(4)
        b.record(4)
        b.record(100)
        merged = a.merge(b)
        assert merged.count == 3
        assert dict(merged.buckets())[4] == 2

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            LatencyHistogram(max_exponent=8).merge(LatencyHistogram(max_exponent=9))

    @given(st.lists(st.integers(0, 1 << 18), min_size=1, max_size=100))
    def test_merge_equals_union(self, values):
        half = len(values) // 2
        a, b, union = (
            LatencyHistogram(),
            LatencyHistogram(),
            LatencyHistogram(),
        )
        for v in values[:half]:
            a.record(v)
        for v in values[half:]:
            b.record(v)
        for v in values:
            union.record(v)
        merged = a.merge(b)
        assert merged.buckets() == union.buckets()
        assert merged.mean == pytest.approx(union.mean)
