"""Tests for the port-attached latency monitor."""

import pytest

from repro.errors import ConfigError
from repro.monitor.latency import LatencyMonitor
from repro.axi.txn import Transaction


def submit(port, sim, n=1, is_write=False):
    txns = []
    for _ in range(n):
        txn = Transaction(
            master=port.name, is_write=is_write, addr=0x1000, burst_len=4,
            created=sim.now,
        )
        port.submit(txn)
        txns.append(txn)
    return txns


class TestLatencyMonitor:
    def test_records_completions(self, sim, mini_norefresh):
        port = mini_norefresh.add_port("m0")
        mon = LatencyMonitor(port)
        txns = submit(port, sim, n=5)
        sim.run()
        assert mon.combined.count == 5
        assert mon.combined.mean == pytest.approx(
            sum(t.latency for t in txns) / 5
        )

    def test_summary_keys(self, sim, mini_norefresh):
        port = mini_norefresh.add_port("m0")
        mon = LatencyMonitor(port)
        submit(port, sim, n=3)
        sim.run()
        summary = mon.summary()
        assert summary["count"] == 3
        assert summary["p99_bound"] >= summary["p50_bound"]

    def test_split_rw(self, sim, mini_norefresh):
        port = mini_norefresh.add_port("m0")
        mon = LatencyMonitor(port, split_rw=True)
        submit(port, sim, n=2, is_write=False)
        submit(port, sim, n=3, is_write=True)
        sim.run()
        assert mon.reads.count == 2
        assert mon.writes.count == 3
        assert mon.combined.count == 5

    def test_observation_window(self, sim, mini_norefresh):
        port = mini_norefresh.add_port("m0")
        mon = LatencyMonitor(port, from_cycle=10_000)
        submit(port, sim, n=3)  # complete well before 10k
        sim.run()
        assert mon.combined.count == 0

    def test_window_validation(self, sim, mini_norefresh):
        port = mini_norefresh.add_port("m0")
        with pytest.raises(ConfigError):
            LatencyMonitor(port, from_cycle=100, to_cycle=100)

    def test_multiple_monitors_coexist(self, sim, mini_norefresh):
        port = mini_norefresh.add_port("m0")
        a = LatencyMonitor(port)
        b = LatencyMonitor(port, split_rw=True)
        submit(port, sim, n=2)
        sim.run()
        assert a.combined.count == 2
        assert b.combined.count == 2
