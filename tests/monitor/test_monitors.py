"""Unit tests for bandwidth counters and windowed monitors."""

import pytest

from repro.errors import ConfigError
from repro.monitor.counters import BeatCounter
from repro.monitor.window import WindowedBandwidthMonitor


class _FakePort:
    """Just enough port surface for monitor attachment."""

    def __init__(self, name="m0"):
        self.name = name
        self.beat_observers = []

    def emit(self, nbytes, now):
        for fn in self.beat_observers:
            fn(nbytes, now)


class TestBeatCounter:
    def test_accumulates(self):
        port = _FakePort()
        counter = BeatCounter(port)
        port.emit(64, 10)
        port.emit(128, 20)
        assert counter.total_bytes == 192
        assert counter.total_transactions == 2

    def test_read_and_clear_delta(self):
        port = _FakePort()
        counter = BeatCounter(port)
        port.emit(64, 10)
        assert counter.read_and_clear_delta() == 64
        assert counter.read_and_clear_delta() == 0
        port.emit(32, 20)
        assert counter.read_and_clear_delta() == 32

    def test_bandwidth(self):
        port = _FakePort()
        counter = BeatCounter(port)
        port.emit(1600, 10)
        assert counter.bandwidth_bytes_per_cycle(100) == 16.0
        assert counter.bandwidth_bytes_per_cycle(0) == 0.0


class TestWindowedMonitor:
    def test_window_byte_counts(self):
        port = _FakePort()
        mon = WindowedBandwidthMonitor(port, window_cycles=100)
        port.emit(10, 5)
        port.emit(10, 99)
        port.emit(7, 100)
        assert mon.window_bytes(300) == [20, 7, 0]

    def test_totals_and_peak(self):
        port = _FakePort()
        mon = WindowedBandwidthMonitor(port, window_cycles=100)
        port.emit(30, 0)
        port.emit(50, 150)
        assert mon.total_bytes() == 80
        assert mon.peak_window_bytes() == 50
        assert mon.mean_bandwidth_bytes_per_cycle(200) == pytest.approx(0.4)

    def test_validation(self):
        port = _FakePort()
        with pytest.raises(ConfigError):
            WindowedBandwidthMonitor(port, window_cycles=0)
        mon = WindowedBandwidthMonitor(port, window_cycles=100)
        with pytest.raises(ConfigError):
            mon.window_bytes(50)
        with pytest.raises(ConfigError):
            mon.mean_bandwidth_bytes_per_cycle(0)

    def test_zero_length_window_guard(self):
        # Zero- and negative-width windows would divide by zero in
        # every query path; both must be rejected at construction.
        for bad in (0, -1, -100):
            with pytest.raises(ConfigError):
                WindowedBandwidthMonitor(_FakePort(), window_cycles=bad)

    def test_horizon_of_exactly_one_window(self):
        port = _FakePort()
        mon = WindowedBandwidthMonitor(port, window_cycles=100)
        port.emit(12, 0)
        assert mon.window_bytes(100) == [12]


class TestOvershootReport:
    def _monitored(self, pairs, window=100):
        port = _FakePort()
        mon = WindowedBandwidthMonitor(port, window_cycles=window)
        for nbytes, t in pairs:
            port.emit(nbytes, t)
        return mon

    def test_no_violation(self):
        mon = self._monitored([(50, 0), (50, 100), (50, 200)])
        report = mon.overshoot_report(budget_bytes_per_window=100,
                                      horizon_cycles=300)
        assert report["max_overshoot_ratio"] == 0.5
        assert report["violation_fraction"] == 0.0

    def test_single_violation(self):
        mon = self._monitored([(150, 0), (50, 100)])
        report = mon.overshoot_report(100, 200)
        assert report["max_overshoot_ratio"] == 1.5
        assert report["violation_fraction"] == 0.5

    def test_mean_ratio(self):
        mon = self._monitored([(100, 0), (200, 100)])
        report = mon.overshoot_report(100, 200)
        assert report["mean_ratio"] == pytest.approx(1.5)

    def test_budget_validation(self):
        mon = self._monitored([(10, 0)])
        with pytest.raises(ConfigError):
            mon.overshoot_report(0, 100)

    def test_empty_monitor(self):
        port = _FakePort()
        mon = WindowedBandwidthMonitor(port, window_cycles=100)
        report = mon.overshoot_report(100, 100)
        assert report["max_overshoot_ratio"] == 0.0
