"""Documentation contract: every public item is documented.

The release promise (README: "doc comments on every public item") is
enforced here so it cannot silently rot: every module in the package
carries a module docstring, and every symbol exported from
``repro.__all__`` carries a non-trivial docstring.
"""

import importlib
import pathlib
import pkgutil

import pytest

import repro

SRC_ROOT = pathlib.Path(repro.__file__).parent


def _all_modules():
    names = ["repro"]
    for info in pkgutil.walk_packages([str(SRC_ROOT)], prefix="repro."):
        if info.name.endswith("__main__"):
            continue  # importing it would run the CLI
        names.append(info.name)
    return sorted(names)


MODULES = _all_modules()


class TestModuleDocstrings:
    @pytest.mark.parametrize("name", MODULES)
    def test_module_has_docstring(self, name):
        module = importlib.import_module(name)
        assert module.__doc__ and module.__doc__.strip(), (
            f"module {name} lacks a docstring"
        )


class TestPublicApiDocstrings:
    @pytest.mark.parametrize(
        "symbol", [s for s in repro.__all__ if s != "__version__"]
    )
    def test_exported_symbol_documented(self, symbol):
        obj = getattr(repro, symbol)
        doc = getattr(obj, "__doc__", None)
        assert doc and len(doc.strip()) > 10, (
            f"repro.{symbol} lacks a useful docstring"
        )

    def test_all_exports_resolve(self):
        for symbol in repro.__all__:
            assert hasattr(repro, symbol), f"__all__ lists missing {symbol}"

    def test_version_string(self):
        assert repro.__version__.count(".") == 2
