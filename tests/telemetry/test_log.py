"""Tests for the shared logging helper."""

import logging

from repro.telemetry import log as telemetry_log
from repro.telemetry.log import LOG_LEVEL_ENV, get_logger, resolve_level


class TestResolveLevel:
    def test_explicit_name_wins(self):
        assert resolve_level("debug") == logging.DEBUG
        assert resolve_level("ERROR") == logging.ERROR

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(LOG_LEVEL_ENV, "info")
        assert resolve_level() == logging.INFO

    def test_unknown_name_falls_back_to_warning(self, monkeypatch):
        monkeypatch.setenv(LOG_LEVEL_ENV, "chatty")
        assert resolve_level() == logging.WARNING
        assert resolve_level("nonsense") == logging.WARNING

    def test_default_is_warning(self, monkeypatch):
        monkeypatch.delenv(LOG_LEVEL_ENV, raising=False)
        assert resolve_level() == logging.WARNING


class TestGetLogger:
    def test_reparents_under_repro(self):
        assert get_logger("repro.sim").name == "repro.sim"
        assert get_logger("myapp.module").name == "repro.myapp.module"
        assert get_logger().name == "repro"

    def test_root_configured_once(self):
        get_logger("repro.a")
        root = logging.getLogger("repro")
        handlers_before = list(root.handlers)
        get_logger("repro.b")
        assert list(root.handlers) == handlers_before

    def test_env_level_applied(self, monkeypatch):
        monkeypatch.setenv(LOG_LEVEL_ENV, "debug")
        monkeypatch.setattr(telemetry_log, "_configured", False)
        root = telemetry_log.configure(force=True)
        assert root.level == logging.DEBUG
        # Restore the default for other tests.
        monkeypatch.delenv(LOG_LEVEL_ENV)
        telemetry_log.configure(force=True)

    def test_library_modules_use_the_tree(self):
        # Instrumented modules hand out loggers under repro.*.
        from repro.runner import cache, parallel

        assert cache._log.name.startswith("repro.")
        assert parallel._log.name.startswith("repro.")
