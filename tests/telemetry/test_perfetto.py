"""Tests for the Chrome/Perfetto trace-event exporter."""

import json

import pytest

from repro.errors import ConfigError
from repro.sim.trace import TraceRecord
from repro.telemetry.perfetto import TRACE_PID, TraceEventSink, export_platform_trace


def _record(master="cpu0", txn_id=0, is_write=False, created=0,
            accepted=4, completed=20):
    return TraceRecord(
        master=master, txn_id=txn_id, is_write=is_write, addr=0x1000,
        nbytes=64, created=created, issued=created, accepted=accepted,
        completed=completed,
    )


class TestSlices:
    def test_slice_fields_match_chrome_schema(self):
        sink = TraceEventSink()
        sink.add_slice("cpu0", "work", start=10, duration=5)
        event = sink.to_dict()["traceEvents"][-1]
        # The acceptance contract: every duration event carries
        # ph/ts/dur (plus pid/tid) in trace-event form.
        assert event["ph"] == "X"
        assert event["ts"] == 10
        assert event["dur"] == 5
        assert event["pid"] == TRACE_PID
        assert isinstance(event["tid"], int)

    def test_zero_duration_clamped_to_one(self):
        sink = TraceEventSink()
        sink.add_slice("cpu0", "instant", start=0, duration=0)
        assert sink.to_dict()["traceEvents"][-1]["dur"] == 1

    def test_stable_tids_per_track(self):
        sink = TraceEventSink()
        assert sink.tid_for("a") == sink.tid_for("a")
        assert sink.tid_for("a") != sink.tid_for("b")


class TestTransactions:
    def test_transaction_emits_wait_and_xfer(self):
        sink = TraceEventSink()
        sink.add_transaction(_record(created=0, accepted=4, completed=20))
        assert len(sink) == 2
        wait, xfer = list(sink.to_dict()["traceEvents"])[-2:]
        assert wait["name"] == "wait read"
        assert wait["ts"] == 0 and wait["dur"] == 4
        assert xfer["name"] == "read 64B"
        assert xfer["ts"] == 4 and xfer["dur"] == 16
        assert xfer["args"]["addr"] == "0x1000"

    def test_no_wait_slice_when_accepted_immediately(self):
        sink = TraceEventSink()
        sink.add_transaction(_record(created=5, accepted=5, completed=9))
        assert len(sink) == 1

    def test_write_kind(self):
        sink = TraceEventSink()
        sink.add_transaction(_record(is_write=True, created=0, accepted=2))
        names = [e["name"] for e in sink.to_dict()["traceEvents"]
                 if e["ph"] == "X"]
        assert "wait write" in names
        assert "write 64B" in names


class TestThrottle:
    def test_throttle_log_track(self):
        sink = TraceEventSink()
        sink.add_throttle_log("acc0", [(10, 20), (50, 55)])
        events = [e for e in sink.to_dict()["traceEvents"] if e["ph"] == "X"]
        assert len(events) == 2
        assert all(e["name"] == "throttle" for e in events)
        meta_names = [
            e["args"]["name"]
            for e in sink.to_dict()["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        ]
        assert "acc0/regulator" in meta_names


class TestRingBuffer:
    def test_oldest_dropped_and_counted(self):
        sink = TraceEventSink(ring_buffer=3)
        for i in range(5):
            sink.add_slice("t", f"s{i}", start=i, duration=1)
        assert len(sink) == 3
        assert sink.dropped == 2
        kept = [e["name"] for e in sink.to_dict()["traceEvents"]
                if e["ph"] == "X"]
        assert kept == ["s2", "s3", "s4"]
        assert sink.to_dict()["otherData"]["dropped_events"] == 2

    @pytest.mark.parametrize("size", [0, -1])
    def test_non_positive_size_rejected(self, size):
        with pytest.raises(ConfigError):
            TraceEventSink(ring_buffer=size)


class TestExport:
    def test_write_produces_loadable_json(self, tmp_path):
        sink = TraceEventSink()
        sink.add_transaction(_record())
        path = str(tmp_path / "trace.json")
        sink.write(path)
        with open(path) as fh:
            payload = json.load(fh)
        assert "traceEvents" in payload
        for event in payload["traceEvents"]:
            assert event["ph"] in ("X", "M")
            if event["ph"] == "X":
                assert "ts" in event and "dur" in event

    def test_export_platform_trace_end_to_end(self, tmp_path):
        """Reduced E2-style regulated run -> trace.json (acceptance)."""
        from dataclasses import replace

        from repro.regulation.factory import RegulatorSpec
        from repro.soc.experiment import run_experiment
        from repro.soc.presets import zcu102

        spec = RegulatorSpec(
            kind="tightly_coupled", window_cycles=256, budget_bytes=1024
        )
        config = zcu102(num_accels=2, cpu_work=300, accel_regulator=spec)
        config = replace(
            config, trace_masters=tuple(m.name for m in config.masters)
        )
        result = run_experiment(config)
        path = str(tmp_path / "trace.json")
        sink = export_platform_trace(result.platform, path=path)
        assert len(sink) > 0
        with open(path) as fh:
            payload = json.load(fh)
        slices = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert slices, "expected duration events"
        for event in slices:
            assert event["ph"] == "X"
            assert isinstance(event["ts"], int)
            assert event["dur"] >= 1
        tracks = {
            e["args"]["name"]
            for e in payload["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert "cpu0" in tracks
        # The tight budget forces denials, so regulator tracks exist.
        assert any(t.endswith("/regulator") for t in tracks)
