"""End-to-end checks: instrumented components populate the registry."""

import pytest

from repro.regulation.factory import RegulatorSpec
from repro.soc.experiment import run_experiment
from repro.soc.presets import zcu102
from repro.telemetry import MetricsRegistry, use_registry


@pytest.fixture(scope="module")
def regulated_run():
    """One small regulated run with a scoped, enabled registry."""
    metrics = MetricsRegistry(enabled=True)
    spec = RegulatorSpec(
        kind="tightly_coupled", window_cycles=256, budget_bytes=2048
    )
    with use_registry(metrics):
        result = run_experiment(
            zcu102(num_accels=2, cpu_work=2000, accel_regulator=spec)
        )
    return result, metrics


def _value(metrics, name, **labels):
    want = tuple(sorted((k, str(v)) for k, v in labels.items()))
    for entry in metrics.collect().get(name, []):
        if tuple(sorted(entry["labels"].items())) == want:
            return entry["value"]
    raise AssertionError(f"no metric {name} with labels {labels}")


class TestAxiMetrics:
    def test_txn_lifecycle_counts_consistent(self, regulated_run):
        result, metrics = regulated_run
        for master in ("cpu0", "acc0", "acc1"):
            issued = _value(metrics, "axi_txn_issued", master=master)
            accepted = _value(metrics, "axi_txn_accepted", master=master)
            completed = _value(metrics, "axi_txn_completed", master=master)
            assert issued >= accepted >= completed > 0

    def test_outstanding_histogram_observed(self, regulated_run):
        _, metrics = regulated_run
        depth = _value(metrics, "axi_outstanding_depth", master="cpu0")
        assert depth["count"] > 0

    def test_interconnect_counters(self, regulated_run):
        _, metrics = regulated_run
        assert _value(metrics, "interconnect_arb_passes") > 0
        assert _value(metrics, "interconnect_accepted") > 0


class TestDramMetrics:
    def test_row_access_kinds(self, regulated_run):
        result, metrics = regulated_run
        total = sum(
            _value(metrics, "dram_row_access", kind=kind)
            for kind in ("hit", "miss", "conflict")
        )
        assert total == _value(metrics, "dram_serviced")
        assert _value(metrics, "dram_bytes") > 0


class TestRegulatorMetrics:
    def test_grants_match_monitor_totals(self, regulated_run):
        result, metrics = regulated_run
        reg = result.platform.regulators["acc0"]
        grants = _value(
            metrics, "regulator_grants",
            master="acc0", policy="TightlyCoupledRegulator",
        )
        assert grants == reg.charged_transactions
        granted = _value(
            metrics, "regulator_granted_bytes",
            master="acc0", policy="TightlyCoupledRegulator",
        )
        assert granted == reg.charged_bytes

    def test_window_resets_reported(self, regulated_run):
        _, metrics = regulated_run
        resets = _value(
            metrics, "regulator_window_resets",
            master="acc0", policy="TightlyCoupledRegulator",
        )
        assert resets > 0

    def test_budget_gauge(self, regulated_run):
        _, metrics = regulated_run
        assert _value(metrics, "regulator_budget_bytes", master="acc0") == 2048

    def test_throttle_log_intervals_closed(self, regulated_run):
        result, _ = regulated_run
        port = result.platform.ports["acc0"]
        assert port.throttle_log, "tight budget should cause denials"
        for start, end in port.throttle_log:
            assert end > start


class TestKernelStats:
    def test_kernel_stats_always_available(self, regulated_run):
        result, _ = regulated_run
        stats = result.platform.sim.kernel_stats()
        assert stats["events_dispatched"] > 0
        assert stats["events_scheduled"] > 0
        assert stats["backend"] in ("calendar", "heap")
        if stats["backend"] == "calendar":
            assert (
                stats["ring_pushes"] + stats["overflow_pushes"]
                == stats["events_scheduled"]
            )
        assert (
            stats["pool_allocations"] + stats["pool_reuses"]
            == stats["events_scheduled"]
        )

    def test_kernel_stats_without_telemetry(self):
        """kernel_stats is pull-based: REPRO_TELEMETRY does not gate it."""
        with use_registry(MetricsRegistry(enabled=False)):
            result = run_experiment(zcu102(num_accels=0, cpu_work=200))
        stats = result.platform.sim.kernel_stats()
        assert stats["events_dispatched"] > 0


class TestDisabledRegistryIsEmpty:
    def test_run_with_disabled_registry_records_nothing(self):
        metrics = MetricsRegistry(enabled=False)
        with use_registry(metrics):
            run_experiment(zcu102(num_accels=1, cpu_work=200))
        assert len(metrics) == 0
        assert metrics.format_summary() == ""
