"""Regression tests for ``scripts/check_telemetry_overhead.py``.

The CI gate exists to catch push-style telemetry overhead creeping
onto the kernel dispatch path, which manifests as the *enabled* run
falling behind the disabled one.  These tests drive ``main`` with
stubbed probe rates to pin the gate's direction: it must fail when
"on" regresses and must not fail when "off" is merely noisy-slow.
"""

import importlib.util
import os

import pytest

_SCRIPT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)),
    "..", "..", "scripts", "check_telemetry_overhead.py",
)


@pytest.fixture(scope="module")
def gate():
    spec = importlib.util.spec_from_file_location("overhead_gate", _SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _stub_rates(monkeypatch, gate, rate_on, rate_off):
    monkeypatch.setattr(
        gate, "_sample",
        lambda mode: rate_on if mode == "on" else rate_off,
    )


class TestGateDirection:
    def test_enabled_regression_fails(self, monkeypatch, gate):
        _stub_rates(monkeypatch, gate, rate_on=90.0, rate_off=100.0)
        assert gate.main(["--tolerance", "0.02"]) == 1

    def test_within_tolerance_passes(self, monkeypatch, gate):
        _stub_rates(monkeypatch, gate, rate_on=99.0, rate_off=100.0)
        assert gate.main(["--tolerance", "0.02"]) == 0

    def test_noisy_slow_off_run_does_not_flake(self, monkeypatch, gate):
        # Benign noise in the other direction (off slower than on)
        # is not the regression this gate guards against.
        _stub_rates(monkeypatch, gate, rate_on=100.0, rate_off=95.0)
        assert gate.main(["--tolerance", "0.02"]) == 0
