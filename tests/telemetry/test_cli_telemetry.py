"""CLI smoke tests for the profile and trace verbs."""

import json

from repro.cli import main


class TestProfileVerb:
    def test_profile_prints_table(self, capsys):
        code = main(
            ["profile", "--hogs", "1", "--work", "200", "--kind", "none"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "handler" in out
        assert "TOTAL" in out
        assert "us/event" in out

    def test_profile_scenario_name(self, capsys):
        code = main(
            ["profile", "industrial", "--kind", "none",
             "--max-cycles", "200000"]
        )
        assert code == 0
        assert "TOTAL" in capsys.readouterr().out

    def test_profile_unknown_experiment(self, capsys):
        code = main(["profile", "warp_drive"])
        assert code == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_profile_limit(self, capsys):
        code = main(
            ["profile", "--hogs", "1", "--work", "200", "--kind", "none",
             "--limit", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        table = [line for line in out.splitlines() if line.strip()]
        # header + 2 rows + TOTAL + summary line
        assert len(table) == 5


class TestTraceVerb:
    def test_trace_writes_valid_json(self, tmp_path, capsys):
        out_path = str(tmp_path / "trace.json")
        code = main(
            ["trace", "--export", "perfetto", "--out", out_path,
             "--hogs", "1", "--work", "200"]
        )
        assert code == 0
        assert "wrote" in capsys.readouterr().out
        with open(out_path) as fh:
            payload = json.load(fh)
        slices = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert slices
        for event in slices:
            assert isinstance(event["ts"], int)
            assert event["dur"] >= 1

    def test_trace_ring_buffer_bounds_events(self, tmp_path):
        out_path = str(tmp_path / "trace.json")
        code = main(
            ["trace", "--out", out_path, "--hogs", "1", "--work", "200",
             "--ring-buffer", "10"]
        )
        assert code == 0
        with open(out_path) as fh:
            payload = json.load(fh)
        slices = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert len(slices) == 10
        assert payload["otherData"]["dropped_events"] > 0
