"""Tests for the kernel phase profiler."""

import pytest

from repro.errors import ConfigError
from repro.sim.kernel import Simulator
from repro.telemetry.profiler import (
    PhaseProfiler,
    callback_key,
    profile_experiment,
)


class _Component:
    def __init__(self, sim):
        self.sim = sim
        self.fired = 0

    def tick(self):
        self.fired += 1
        if self.fired < 5:
            self.sim.schedule(10, self.tick)


def _free_fn():
    pass


class TestCallbackKey:
    def test_bound_method(self):
        comp = _Component(Simulator())
        assert callback_key(comp.tick) == "_Component.tick"

    def test_plain_function(self):
        assert callback_key(_free_fn) == "_free_fn"

    def test_lambda_uses_qualname(self):
        key = callback_key(lambda: None)
        assert "lambda" in key


class TestAttachment:
    def test_attach_detach(self):
        sim = Simulator()
        profiler = PhaseProfiler()
        profiler.attach(sim)
        assert sim._profiler is profiler
        profiler.detach(sim)
        assert sim._profiler is None

    def test_second_profiler_rejected(self):
        sim = Simulator()
        PhaseProfiler().attach(sim)
        with pytest.raises(ConfigError):
            PhaseProfiler().attach(sim)

    def test_attach_to_scopes(self):
        sim = Simulator()
        profiler = PhaseProfiler()
        with profiler.attach_to(sim):
            assert sim._profiler is profiler
        assert sim._profiler is None

    def test_reattach_same_profiler_is_idempotent(self):
        sim = Simulator()
        profiler = PhaseProfiler()
        profiler.attach(sim)
        profiler.attach(sim)  # no error
        assert sim._profiler is profiler


class TestProfiledRun:
    def test_attribution_counts_events(self):
        sim = Simulator()
        comp = _Component(sim)
        sim.schedule(0, comp.tick)
        profiler = PhaseProfiler()
        with profiler.attach_to(sim):
            sim.run()
        assert comp.fired == 5
        assert profiler.events == 5
        assert profiler.records["_Component.tick"][0] == 5
        assert profiler.records["_Component.tick"][1] >= 0.0
        assert profiler.wall_seconds > 0.0

    def test_profiled_run_matches_unprofiled(self):
        def run(profiled):
            sim = Simulator()
            comp = _Component(sim)
            sim.schedule(0, comp.tick)
            if profiled:
                with PhaseProfiler().attach_to(sim):
                    sim.run()
            else:
                sim.run()
            return sim.now, comp.fired, sim.events_dispatched

        assert run(True) == run(False)

    def test_injectable_clock(self):
        ticks = iter(range(1000))

        def clock():
            return float(next(ticks))

        sim = Simulator()
        comp = _Component(sim)
        sim.schedule(0, comp.tick)
        profiler = PhaseProfiler(clock=clock)
        with profiler.attach_to(sim):
            sim.run()
        # Each bracketed callback consumes exactly 1.0 fake seconds.
        assert profiler.records["_Component.tick"][1] == pytest.approx(5.0)


class TestReporting:
    def _populated(self):
        sim = Simulator()
        comp = _Component(sim)
        sim.schedule(0, comp.tick)
        profiler = PhaseProfiler()
        with profiler.attach_to(sim):
            sim.run()
        return profiler

    def test_rows_sorted_by_time(self):
        profiler = self._populated()
        rows = profiler.rows()
        times = [seconds for _, _, seconds in rows]
        assert times == sorted(times, reverse=True)

    def test_format_table_has_header_and_total(self):
        table = self._populated().format_table()
        assert "handler" in table
        assert "TOTAL" in table
        assert "_Component.tick" in table

    def test_to_dict_roundtrips_json(self):
        import json

        payload = self._populated().to_dict()
        decoded = json.loads(json.dumps(payload))
        assert decoded["events"] == 5
        assert decoded["handlers"][0]["handler"] == "_Component.tick"


class TestProfileExperiment:
    def test_profiles_small_platform(self):
        from repro.soc.presets import zcu102

        config = zcu102(num_accels=1, cpu_work=200)
        result, profiler = profile_experiment(config)
        assert result.critical_runtime() > 0
        assert profiler.events > 0
        keys = set(profiler.records)
        assert any(k.startswith("Interconnect.") for k in keys)
        assert any(k.startswith("DramController.") for k in keys)

    def test_profiled_experiment_matches_plain_run(self):
        from repro.soc.experiment import run_experiment
        from repro.soc.presets import zcu102

        config = zcu102(num_accels=1, cpu_work=200)
        plain = run_experiment(config)
        profiled, _ = profile_experiment(config)
        assert profiled.critical_runtime() == plain.critical_runtime()
        assert profiled.elapsed == plain.elapsed
