"""Tests for runner telemetry reports and the runner's accounting."""

import json

from repro.runner import ParallelRunner, ResultCache, RunSpec
from repro.soc.presets import zcu102
from repro.telemetry.runreport import (
    REPORT_SCHEMA,
    RunnerTelemetry,
    write_runner_report,
)


class _FakeStats:
    total = 4
    executed = 2
    cache_hits = 1
    cache_misses = 3
    cache_poisoned = 1
    deduped = 1
    mode = "parallel"
    workers = 2
    wall_seconds = 2.0
    spec_seconds = [1.0, 2.0]


class _LegacyStats:
    """Stats shape predating the per-batch cache counters."""

    total = 1
    executed = 1
    cache_hits = 0
    deduped = 0
    mode = "serial"
    workers = 1
    wall_seconds = 1.0
    spec_seconds = [1.0]


class _FakeRunner:
    last_stats = _FakeStats()


def _spec(work, accels=1):
    return RunSpec(config=zcu102(num_accels=accels, cpu_work=work))


class TestFromRunner:
    def test_snapshot_math(self):
        t = RunnerTelemetry.from_runner(_FakeRunner())
        assert t.total == 4
        assert t.cache_misses == 3
        assert t.cache_poisoned == 1
        # 3 busy seconds over 2 workers x 2 wall seconds.
        assert t.utilization == 0.75

    def test_missing_cache_counters_default_zero(self):
        runner = _FakeRunner()
        runner.last_stats = _LegacyStats()
        t = RunnerTelemetry.from_runner(runner)
        assert t.cache_misses == 0
        assert t.cache_poisoned == 0

    def test_to_dict_carries_schema(self):
        payload = RunnerTelemetry.from_runner(_FakeRunner()).to_dict()
        assert payload["schema"] == REPORT_SCHEMA
        assert payload["spec_seconds"] == [1.0, 2.0]


class TestWrite:
    def test_write_runner_report(self, tmp_path):
        path = str(tmp_path / "report.json")
        write_runner_report(_FakeRunner(), path, extra={"suite": "unit"})
        with open(path) as fh:
            payload = json.load(fh)
        assert payload["suite"] == "unit"
        assert payload["mode"] == "parallel"


class TestRealRunnerAccounting:
    def test_serial_batch_records_timings(self):
        runner = ParallelRunner(max_workers=1, cache=None)
        runner.run([_spec(100), _spec(150)])
        stats = runner.last_stats
        assert stats.executed == 2
        assert stats.workers == 1
        assert len(stats.spec_seconds) == 2
        assert all(s > 0 for s in stats.spec_seconds)
        assert stats.wall_seconds >= max(stats.spec_seconds)
        t = RunnerTelemetry.from_runner(runner)
        assert 0.0 < t.utilization <= 1.0

    def test_cache_counts_misses_hits_and_poison(self, tmp_path):
        cache = ResultCache(root=str(tmp_path / "cache"))
        runner = ParallelRunner(max_workers=1, cache=cache)
        spec = _spec(100)
        runner.run([spec])
        assert (cache.hits, cache.misses, cache.poisoned) == (0, 1, 0)
        runner.run([spec])
        assert (cache.hits, cache.misses, cache.poisoned) == (1, 1, 0)
        # The warm batch's report must not re-attribute the first
        # batch's miss: stats carry per-batch deltas, not the cache's
        # cumulative lifetime counters.
        warm = RunnerTelemetry.from_runner(runner)
        assert warm.cache_hits == 1
        assert warm.cache_misses == 0
        assert warm.cache_poisoned == 0
        # Poison the entry: next lookup discards and recomputes.
        with open(cache.path_for(spec), "w") as fh:
            fh.write("{not json")
        runner.run([spec])
        assert cache.poisoned == 1
        assert cache.misses == 2
        t = RunnerTelemetry.from_runner(runner)
        assert t.cache_misses == 1
        assert t.cache_poisoned == 1
