"""Unit tests for the metrics registry and its null handles."""

import pytest

from repro.errors import ConfigError
from repro.telemetry.registry import (
    DEFAULT_BUCKETS,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    TELEMETRY_ENV,
    MetricsRegistry,
    get_registry,
    set_registry,
    telemetry_enabled,
    use_registry,
)


class TestHandles:
    def test_counter_accumulates(self):
        reg = MetricsRegistry(enabled=True)
        c = reg.counter("requests", master="cpu0")
        c.inc()
        c.inc(5)
        assert c.snapshot() == 6

    def test_same_name_labels_share_handle(self):
        reg = MetricsRegistry(enabled=True)
        a = reg.counter("requests", master="cpu0")
        b = reg.counter("requests", master="cpu0")
        other = reg.counter("requests", master="acc0")
        assert a is b
        assert a is not other
        assert len(reg) == 2

    def test_label_order_irrelevant(self):
        reg = MetricsRegistry(enabled=True)
        a = reg.counter("m", x="1", y="2")
        b = reg.counter("m", y="2", x="1")
        assert a is b

    def test_gauge_set_inc_dec(self):
        reg = MetricsRegistry(enabled=True)
        g = reg.gauge("depth")
        g.set(10)
        g.inc(3)
        g.dec()
        assert g.snapshot() == 12

    def test_histogram_buckets_and_summary(self):
        reg = MetricsRegistry(enabled=True)
        h = reg.histogram("lat", bounds=(2, 4, 8))
        for v in (1, 2, 3, 5, 100):
            h.observe(v)
        assert h.count == 5
        assert h.overflow == 1  # 100 beyond the last bound
        assert h.maximum == 100
        summary = h.summary()
        assert summary["count"] == 5.0
        assert summary["max"] == 100.0

    def test_histogram_empty_percentiles(self):
        reg = MetricsRegistry(enabled=True)
        h = reg.histogram("lat")
        assert h.percentile_bound(50) == 0
        assert h.mean == 0.0
        with pytest.raises(ConfigError):
            h.percentile_bound(0)

    def test_histogram_overflow_percentile_uses_maximum(self):
        reg = MetricsRegistry(enabled=True)
        h = reg.histogram("lat", bounds=(2, 4))
        h.observe(1000)
        assert h.percentile_bound(99) == 1000

    def test_histogram_bounds_validation(self):
        reg = MetricsRegistry(enabled=True)
        with pytest.raises(ConfigError):
            reg.histogram("bad", bounds=())
        with pytest.raises(ConfigError):
            reg.histogram("bad", bounds=(4, 2))

    def test_default_buckets_ascending(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestDisabled:
    def test_disabled_returns_null_singletons(self):
        reg = MetricsRegistry(enabled=False)
        assert reg.counter("c") is NULL_COUNTER
        assert reg.gauge("g") is NULL_GAUGE
        assert reg.histogram("h") is NULL_HISTOGRAM
        assert len(reg) == 0

    def test_null_handles_are_inert(self):
        NULL_COUNTER.inc()
        NULL_COUNTER.inc(100)
        NULL_GAUGE.set(5)
        NULL_GAUGE.inc()
        NULL_GAUGE.dec()
        NULL_HISTOGRAM.observe(42)
        assert NULL_COUNTER.snapshot() == 0
        assert NULL_GAUGE.snapshot() == 0
        assert NULL_HISTOGRAM.summary()["count"] == 0.0

    def test_env_gate(self, monkeypatch):
        monkeypatch.setenv(TELEMETRY_ENV, "off")
        assert not telemetry_enabled()
        assert MetricsRegistry().counter("c") is NULL_COUNTER
        for value in ("0", "no", "FALSE", " Off "):
            monkeypatch.setenv(TELEMETRY_ENV, value)
            assert not telemetry_enabled()
        monkeypatch.setenv(TELEMETRY_ENV, "on")
        assert telemetry_enabled()
        monkeypatch.delenv(TELEMETRY_ENV)
        assert telemetry_enabled()


class TestDefaultRegistry:
    def test_get_set_roundtrip(self):
        original = get_registry()
        replacement = MetricsRegistry(enabled=True)
        try:
            previous = set_registry(replacement)
            assert previous is original
            assert get_registry() is replacement
        finally:
            set_registry(original)

    def test_use_registry_scopes_and_restores(self):
        original = get_registry()
        scoped = MetricsRegistry(enabled=True)
        with use_registry(scoped) as reg:
            assert reg is scoped
            assert get_registry() is scoped
        assert get_registry() is original

    def test_use_registry_restores_on_error(self):
        original = get_registry()
        with pytest.raises(RuntimeError):
            with use_registry(MetricsRegistry(enabled=True)):
                raise RuntimeError("boom")
        assert get_registry() is original


class TestReporting:
    def test_collect_groups_by_metric(self):
        reg = MetricsRegistry(enabled=True)
        reg.counter("requests", master="cpu0").inc(3)
        reg.counter("requests", master="acc0").inc(1)
        reg.gauge("budget").set(2048)
        reg.histogram("depth").observe(4)
        collected = reg.collect()
        assert {e["value"] for e in collected["requests"]} == {1, 3}
        assert collected["budget"][0]["type"] == "gauge"
        assert collected["depth"][0]["value"]["count"] == 1.0

    def test_format_summary_lines_and_limit(self):
        reg = MetricsRegistry(enabled=True)
        reg.counter("requests", master="cpu0").inc(3)
        reg.gauge("budget").set(7)
        text = reg.format_summary()
        assert "requests{master=cpu0} = 3" in text
        assert "budget = 7" in text
        assert len(reg.format_summary(limit=1).splitlines()) == 1

    def test_reset_drops_handles(self):
        reg = MetricsRegistry(enabled=True)
        reg.counter("c").inc()
        reg.reset()
        assert len(reg) == 0
        assert reg.counter("c").snapshot() == 0
