"""Property tests on arbitration fairness and service conservation."""

from hypothesis import given, settings, strategies as st

from repro.axi.interconnect import InterconnectConfig
from repro.axi.txn import Transaction
from repro.sim.kernel import Simulator
from repro.dram.controller import DramConfig
from repro.dram.timing import DramTiming
from tests.conftest import MiniSystem


def build(num_ports, arbiter="round_robin", split=False):
    sim = Simulator()
    mini = MiniSystem(
        sim,
        dram_config=DramConfig(timing=DramTiming(), refresh_enabled=False),
        interconnect_config=InterconnectConfig(
            arbiter=arbiter, split_addr_channels=split
        ),
    )
    ports = [mini.add_port(f"m{i}") for i in range(num_ports)]
    return sim, mini, ports


class TestArbitrationProperties:
    @given(
        num_ports=st.integers(2, 6),
        txns_per_port=st.integers(5, 25),
        burst=st.sampled_from([1, 4, 16]),
    )
    @settings(max_examples=25, deadline=None)
    def test_round_robin_equal_backlogs_equal_service(
        self, num_ports, txns_per_port, burst
    ):
        sim, mini, ports = build(num_ports)
        for index, port in enumerate(ports):
            for i in range(txns_per_port):
                port.submit(
                    Transaction(
                        master=port.name,
                        is_write=False,
                        addr=(index << 22) + i * 256,
                        burst_len=burst,
                    )
                )
        sim.run()
        counts = [p.stats.counter("completed").value for p in ports]
        # Everything completes; equal offered work -> equal service.
        assert counts == [txns_per_port] * num_ports
        # Conservation at the controller.
        assert (
            mini.dram.stats.counter("serviced").value
            == num_ports * txns_per_port
        )

    @given(
        num_ports=st.integers(2, 5),
        txns=st.integers(4, 20),
        split=st.booleans(),
    )
    @settings(max_examples=25, deadline=None)
    def test_mixed_direction_conservation(self, num_ports, txns, split):
        sim, mini, ports = build(num_ports, split=split)
        submitted_bytes = 0
        for index, port in enumerate(ports):
            for i in range(txns):
                txn = Transaction(
                    master=port.name,
                    is_write=(i % 2 == 1),
                    addr=(index << 22) + i * 256,
                    burst_len=4,
                )
                port.submit(txn)
                submitted_bytes += txn.nbytes
        sim.run()
        completed_bytes = sum(
            p.stats.counter("bytes").value for p in ports
        )
        assert completed_bytes == submitted_bytes
        assert mini.dram.stats.counter("bytes").value == submitted_bytes

    @given(seed=st.integers(0, 50))
    @settings(max_examples=10, deadline=None)
    def test_latency_timestamps_consistent(self, seed):
        sim, mini, ports = build(3)
        import random

        rng = random.Random(seed)
        txns = []
        for port in ports:
            for _ in range(10):
                txn = Transaction(
                    master=port.name,
                    is_write=rng.random() < 0.5,
                    addr=rng.randrange(0, 1 << 20, 64),
                    burst_len=rng.choice([1, 4, 16]),
                )
                port.submit(txn)
                txns.append(txn)
        sim.run()
        for txn in txns:
            assert (
                txn.created
                <= txn.issued
                <= txn.accepted
                <= txn.mem_start
                <= txn.completed
            )
