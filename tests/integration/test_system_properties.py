"""System-level property tests over randomized configurations.

Hypothesis drives whole-platform builds with random actor mixes and
regulation schemes, then checks the invariants that must hold for
*any* configuration:

* byte conservation between ports and the DRAM controller;
* bit-exact determinism from (config, seed);
* every bounded master finishes (no scheme wedges anyone);
* regulated rates never exceed their configured budgets.
"""

from hypothesis import given, settings, strategies as st

from repro.regulation.factory import RegulatorSpec
from repro.soc.experiment import PlatformResult, run_experiment
from repro.soc.platform import MasterSpec, Platform, PlatformConfig

MB = 1 << 20

_WORKLOADS = ("stream_read", "stream_write", "memcpy", "fft_stride",
              "matmul_stream")
_SPECS = [
    None,
    RegulatorSpec(kind="noreg"),
    RegulatorSpec(kind="tightly_coupled", window_cycles=512,
                  budget_bytes=2048),
    RegulatorSpec(kind="tightly_coupled", window_cycles=256,
                  budget_bytes=1024, carryover_windows=2),
    RegulatorSpec(kind="tightly_coupled", window_cycles=256,
                  budget_bytes=512, work_conserving=True),
    RegulatorSpec(kind="memguard", period_cycles=25_000,
                  budget_bytes=50_000),
    RegulatorSpec(kind="tdma", window_cycles=512, tdma_slots=6),
    RegulatorSpec(kind="prem", prem_hold_cycles=1024),
]

config_strategy = st.builds(
    lambda mix, seed: _make_config(mix, seed),
    mix=st.lists(
        st.tuples(
            st.sampled_from(_WORKLOADS),
            st.sampled_from(range(len(_SPECS))),
        ),
        min_size=1,
        max_size=4,
    ),
    seed=st.integers(0, 2**16),
)


def _make_config(mix, seed):
    masters = [
        MasterSpec(
            name="cpu0", workload="latency_probe",
            region_base=0x1000_0000, region_extent=4 * MB,
            work=400, max_outstanding=4, critical=True,
        )
    ]
    base = 0x2000_0000
    for index, (workload, spec_index) in enumerate(mix):
        masters.append(
            MasterSpec(
                name=f"bg{index}", workload=workload,
                region_base=base, region_extent=4 * MB,
                work=32 * 1024,
                regulator=_SPECS[spec_index],
            )
        )
        base += 4 * MB
    return PlatformConfig(masters=tuple(masters), seed=seed)


HORIZON = 3_000_000


class TestRandomizedSystems:
    @given(config=config_strategy)
    @settings(max_examples=20, deadline=None)
    def test_conservation_and_progress(self, config):
        platform = Platform(config)
        elapsed = platform.run(HORIZON, stop_when_critical_done=False)
        result = PlatformResult(platform, elapsed)
        # Every bounded master finished: no regulation scheme wedges.
        for name, master in platform.masters.items():
            assert master.done, f"{name} did not finish"
        # Conservation: the DRAM serviced at least everything the
        # ports completed, within the in-flight allowance.
        port_bytes = sum(m.bytes_moved for m in result.masters.values())
        assert result.dram.bytes_moved >= port_bytes
        # All latencies positive and ordered.
        for m in result.masters.values():
            if m.completed:
                assert 0 < m.latency_p50 <= m.latency_p99 <= m.latency_max

    @given(config=config_strategy)
    @settings(max_examples=10, deadline=None)
    def test_bit_exact_determinism(self, config):
        a = run_experiment(config, max_cycles=HORIZON,
                           stop_when_critical_done=False)
        b = run_experiment(config, max_cycles=HORIZON,
                           stop_when_critical_done=False)
        for name in a.masters:
            ma, mb = a.master(name), b.master(name)
            assert ma.bytes_moved == mb.bytes_moved
            assert ma.latency_max == mb.latency_max
            assert ma.finished_at == mb.finished_at

    @given(
        budget=st.integers(512, 8_192),
        window=st.sampled_from([256, 512, 1024]),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=15, deadline=None)
    def test_regulated_rate_never_exceeds_budget(self, budget, window, seed):
        spec = RegulatorSpec(
            kind="tightly_coupled", window_cycles=window, budget_bytes=budget
        )
        masters = (
            MasterSpec(
                name="hog", workload="stream_read",
                region_base=0x2000_0000, region_extent=4 * MB,
                regulator=spec,
            ),
        )
        config = PlatformConfig(masters=masters, seed=seed)
        horizon = 60 * window
        result = run_experiment(config, max_cycles=horizon,
                                stop_when_critical_done=False)
        configured = budget / window
        achieved = result.master("hog").bytes_moved / horizon
        # One burst of slack for in-flight completion accounting.
        assert achieved <= configured + 256 / window
