"""End-to-end integration tests across the full stack."""

import pytest

from repro.analysis.metrics import slowdown
from repro.regulation.factory import RegulatorSpec
from repro.soc.experiment import run_experiment, run_solo_baseline
from repro.soc.presets import zcu102

CPU_WORK = 1500


class TestConservation:
    def test_bytes_conserved_port_to_dram(self):
        result = run_experiment(zcu102(num_accels=2, cpu_work=CPU_WORK))
        port_bytes = sum(m.bytes_moved for m in result.masters.values())
        # The DRAM services every accepted transaction; it may have
        # moved a few more whose responses were still in flight when
        # the run stopped.
        assert result.dram.bytes_moved >= port_bytes
        inflight_allowance = sum(
            p.config.max_outstanding * 256
            for p in result.platform.ports.values()
        )
        assert result.dram.bytes_moved - port_bytes <= inflight_allowance

    def test_transactions_conserved(self):
        result = run_experiment(zcu102(num_accels=2, cpu_work=CPU_WORK))
        completed = sum(m.completed for m in result.masters.values())
        assert result.dram.serviced >= completed


class TestDeterminism:
    def test_same_seed_identical_results(self):
        a = run_experiment(zcu102(num_accels=3, cpu_work=CPU_WORK, seed=11))
        b = run_experiment(zcu102(num_accels=3, cpu_work=CPU_WORK, seed=11))
        assert a.critical_runtime() == b.critical_runtime()
        for name in a.masters:
            assert a.master(name).bytes_moved == b.master(name).bytes_moved
            assert a.master(name).latency_p99 == b.master(name).latency_p99

    def test_seed_changes_random_workload(self):
        config_a = zcu102(
            num_accels=0, cpu_workload="pointer_chase",
            cpu_work=CPU_WORK, seed=1,
        )
        config_b = zcu102(
            num_accels=0, cpu_workload="pointer_chase",
            cpu_work=CPU_WORK, seed=2,
        )
        a = run_experiment(config_a)
        b = run_experiment(config_b)
        # Different address streams -> (almost surely) different runtimes.
        assert a.critical_runtime() != b.critical_runtime()


class TestInterferenceShape:
    def test_slowdown_grows_with_hog_count(self):
        runtimes = []
        for hogs in (0, 2, 6):
            result = run_experiment(zcu102(num_accels=hogs, cpu_work=CPU_WORK))
            runtimes.append(result.critical_runtime())
        assert runtimes[0] < runtimes[1] < runtimes[2]

    def test_unregulated_slowdown_is_severe(self):
        solo = run_experiment(zcu102(num_accels=0, cpu_work=CPU_WORK))
        loaded = run_experiment(zcu102(num_accels=6, cpu_work=CPU_WORK))
        s = slowdown(loaded.critical_runtime(), solo.critical_runtime())
        assert s > 3.0


class TestRegulationProtects:
    def test_tc_regulation_reduces_slowdown(self):
        solo = run_experiment(zcu102(num_accels=0, cpu_work=CPU_WORK))
        unreg = run_experiment(zcu102(num_accels=4, cpu_work=CPU_WORK))
        spec = RegulatorSpec(
            kind="tightly_coupled", window_cycles=1024, budget_bytes=1024
        )
        reg = run_experiment(
            zcu102(num_accels=4, cpu_work=CPU_WORK, accel_regulator=spec)
        )
        s_unreg = slowdown(unreg.critical_runtime(), solo.critical_runtime())
        s_reg = slowdown(reg.critical_runtime(), solo.critical_runtime())
        assert s_reg < s_unreg
        assert s_reg < 2.0

    def test_regulated_hogs_share_residual_bandwidth(self):
        spec = RegulatorSpec(
            kind="tightly_coupled", window_cycles=1024, budget_bytes=2048
        )
        result = run_experiment(
            zcu102(num_accels=4, cpu_work=CPU_WORK, accel_regulator=spec)
        )
        rates = [
            result.master(f"acc{i}").bandwidth_bytes_per_cycle
            for i in range(4)
        ]
        configured = 2048 / 1024
        for rate in rates:
            assert rate <= configured * 1.05
        # Fairness: equal budgets -> near-equal achieved rates.
        assert max(rates) - min(rates) < 0.2

    def test_static_qos_helps_latency_but_not_rate(self):
        unreg = run_experiment(
            zcu102(num_accels=4, cpu_work=CPU_WORK, arbiter="round_robin")
        )
        qos = run_experiment(
            zcu102(num_accels=4, cpu_work=CPU_WORK, arbiter="qos",
                   scheduler="frfcfs_qos",
                   cpu_regulator=RegulatorSpec(kind="static_qos", qos=15))
        )
        # Priority ordering (crossbar + QoS-aware DDR scheduler) helps
        # the critical core...
        assert qos.critical_runtime() < unreg.critical_runtime()
        # ...but does not bound what the hogs draw: they still pull
        # several B/cycle, far above any reservation a QoS policy
        # would grant them (e.g. 10% of peak = 1.6 B/cycle total).
        hog_rate = sum(
            qos.master(f"acc{i}").bandwidth_bytes_per_cycle for i in range(4)
        )
        assert hog_rate > 4.0


class TestSoloBaselineHelper:
    def test_solo_baseline_close_to_isolated_preset(self):
        config = zcu102(num_accels=4, cpu_work=CPU_WORK)
        solo_via_helper = run_solo_baseline(config, "cpu0")
        solo_direct = run_experiment(zcu102(num_accels=0, cpu_work=CPU_WORK))
        assert (
            solo_via_helper.critical_runtime()
            == solo_direct.critical_runtime()
        )
