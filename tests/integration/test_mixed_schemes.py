"""Heterogeneous regulation: different schemes coexisting in one system.

Real deployments mix mechanisms -- legacy software MemGuard on one
actor, the new IP on another, a static-priority camera. These tests
pin down that the schemes compose: shared resources stay per-scheme,
each contract is enforced independently, and the QoS manager can
address every budgeted regulator.
"""

import pytest

from repro.errors import ConfigError
from repro.qos.budget import BandwidthBudget
from repro.regulation.factory import RegulatorSpec
from repro.soc.experiment import PlatformResult, run_experiment
from repro.soc.platform import MasterSpec, Platform, PlatformConfig

MB = 1 << 20

TC = RegulatorSpec(kind="tightly_coupled", window_cycles=256,
                   budget_bytes=819)  # 20% of peak
MG = RegulatorSpec(kind="memguard", period_cycles=20_000,
                   budget_bytes=64_000)  # 20% of peak
SQ = RegulatorSpec(kind="static_qos", qos=4)


def mixed_config():
    masters = (
        MasterSpec(
            name="cpu0", workload="latency_probe",
            region_base=0x1000_0000, region_extent=4 * MB,
            work=1_500, max_outstanding=4, critical=True,
        ),
        MasterSpec(
            name="tc_hog", workload="stream_read",
            region_base=0x2000_0000, region_extent=4 * MB, regulator=TC,
        ),
        MasterSpec(
            name="mg_hog", workload="stream_read",
            region_base=0x2400_0000, region_extent=4 * MB, regulator=MG,
        ),
        MasterSpec(
            name="sq_hog", workload="stream_read",
            region_base=0x2800_0000, region_extent=4 * MB, regulator=SQ,
        ),
    )
    return PlatformConfig(masters=masters)


@pytest.fixture(scope="module")
def mixed_result():
    platform = Platform(mixed_config())
    elapsed = platform.run(4_000_000)
    return platform, PlatformResult(platform, elapsed)


class TestMixedSchemes:
    def test_each_contract_enforced_independently(self, mixed_result):
        _platform, result = mixed_result
        configured = 0.2 * 16.0
        # Both budgeted hogs honour their (equal) contracts.
        assert (
            result.master("tc_hog").bandwidth_bytes_per_cycle
            <= configured * 1.05
        )
        # MemGuard overshoots within periods but stays in its regime.
        assert (
            result.master("mg_hog").bandwidth_bytes_per_cycle
            <= configured * 1.4
        )
        # The static-QoS hog has no rate bound at all: it draws well
        # above the others' contracts, limited only by contention.
        assert (
            result.master("sq_hog").bandwidth_bytes_per_cycle
            > configured * 1.3
        )

    def test_qos_manager_addresses_all_regulators(self, mixed_result):
        platform, _result = mixed_result
        assert set(platform.qos_manager.masters) == {
            "tc_hog", "mg_hog", "sq_hog"
        }
        # Budget programming works for the two budgeted kinds...
        event_tc = platform.qos_manager.set_budget(
            "tc_hog", BandwidthBudget(1.0)
        )
        event_mg = platform.qos_manager.set_budget(
            "mg_hog", BandwidthBudget(1.0)
        )
        assert event_tc.latency < event_mg.latency
        # ...and is rejected cleanly for the priority-only kind.
        from repro.errors import RegulationError

        with pytest.raises((ConfigError, RegulationError)):
            platform.qos_manager.set_budget("sq_hog", BandwidthBudget(1.0))

    def test_current_budget_reflects_kind(self, mixed_result):
        platform, _result = mixed_result
        assert platform.qos_manager.current_budget("sq_hog") is None
        tc_budget = platform.qos_manager.current_budget("tc_hog")
        assert tc_budget is not None

    def test_critical_still_finishes(self, mixed_result):
        _platform, result = mixed_result
        assert result.critical().finished_at is not None
