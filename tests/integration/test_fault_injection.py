"""Robustness tests: misbehaving components and degraded modes.

These inject the failure scenarios a deployed QoS system must either
survive or make visible:

* an actor that violates the envelope it declared at admission time;
* a regulator disabled (budget opened up) at run time;
* a pathological MemGuard configuration (interrupt storm);
* a broken (always-deny) regulator that must not wedge the rest of
  the system.
"""

import pytest

from repro.analysis.bounds import CoRunnerEnvelope, worst_case_read_latency
from repro.axi.txn import Transaction
from repro.qos.budget import BandwidthBudget
from repro.regulation.base import BandwidthRegulator
from repro.regulation.factory import RegulatorSpec
from repro.soc.experiment import PlatformResult, run_experiment
from repro.soc.platform import MasterSpec, Platform, PlatformConfig
from repro.soc.presets import zcu102, zcu102_dram, zcu102_interconnect

MB = 1 << 20


class TestEnvelopeViolation:
    def test_deeper_queues_than_declared_break_the_bound(self):
        """The analytic bound is conditional on declared envelopes: an
        actor running with deeper queues than admitted voids it.  The
        *violating* configuration's bound (recomputed with the true
        envelope) must still hold -- i.e. the analysis itself stays
        sound, only the contract was broken."""
        dram = zcu102_dram()
        declared = [CoRunnerEnvelope(2, 16)] * 4
        actual = [CoRunnerEnvelope(8, 16)] * 4
        bound_declared = worst_case_read_latency(
            dram.timing, zcu102_interconnect(), declared,
            critical_burst_beats=4, frfcfs_cap=dram.frfcfs_cap,
            own_outstanding=2,
        )
        bound_actual = worst_case_read_latency(
            dram.timing, zcu102_interconnect(), actual,
            critical_burst_beats=4, frfcfs_cap=dram.frfcfs_cap,
            own_outstanding=2,
        )
        result = run_experiment(zcu102(num_accels=4, cpu_work=1500))
        measured = result.critical().latency_max
        assert measured <= bound_actual          # analysis sound
        assert bound_declared < bound_actual     # violation visible


class TestRuntimeDegradation:
    def test_opening_a_budget_reintroduces_interference(self):
        spec = RegulatorSpec(
            kind="tightly_coupled", window_cycles=256, budget_bytes=410
        )
        platform = Platform(
            zcu102(num_accels=4, cpu_work=4_000, accel_regulator=spec)
        )
        # Mid-run "failure": someone opens every budget wide.
        def open_all():
            for name in platform.qos_manager.masters:
                platform.qos_manager.set_budget(
                    name, BandwidthBudget(16.0)
                )

        platform.sim.schedule_at(60_000, open_all)
        elapsed = platform.run(4_000_000)
        result = PlatformResult(platform, elapsed)
        # The monitor half records the change: hog bandwidth after the
        # failure far exceeds the original reservation.
        hog_rate = result.master("acc0").bandwidth_bytes_per_cycle
        assert hog_rate > (410 / 256) * 1.3
        # And the reconfiguration log holds the evidence.
        assert len(platform.qos_manager.log) == 4

    def test_memguard_interrupt_storm_is_bounded(self):
        # A budget of one burst per period: every burst overflows.
        spec = RegulatorSpec(
            kind="memguard", period_cycles=2_000, budget_bytes=64,
            interrupt_latency=100,
        )
        platform = Platform(
            zcu102(num_accels=1, cpu_work=500, accel_regulator=spec)
        )
        elapsed = platform.run(4_000_000)
        reg = platform.regulators["acc0"]
        # At most one interrupt per period can fire (the handler
        # throttles until the next tick): the storm is bounded by
        # design, not by luck.
        periods = elapsed // 2_000 + 1
        assert reg.interrupt_count <= periods
        assert reg.overhead_cycles > 0


class _StuckRegulator(BandwidthRegulator):
    """A failed IP that denies everything (stuck-at-throttle)."""

    def may_issue(self, txn: Transaction, now: int) -> bool:
        return False

    def next_opportunity(self, txn: Transaction, now: int) -> int:
        return now + 1_000


class TestStuckRegulator:
    def test_other_masters_unaffected(self, sim, mini_norefresh):
        from repro.traffic.accelerator import (
            AcceleratorConfig,
            StreamAccelerator,
        )
        from repro.traffic.patterns import SequentialPattern

        stuck_port = mini_norefresh.add_port(
            "stuck", regulator=_StuckRegulator()
        )
        healthy_port = mini_norefresh.add_port("healthy")
        stuck = StreamAccelerator(
            sim, stuck_port,
            AcceleratorConfig(
                pattern=SequentialPattern(0, MB, 256), total_bytes=4096
            ),
        )
        healthy = StreamAccelerator(
            sim, healthy_port,
            AcceleratorConfig(
                pattern=SequentialPattern(MB, MB, 256), total_bytes=4096
            ),
        )
        stuck.start()
        healthy.start()
        sim.run(until=100_000)
        assert healthy.done
        assert not stuck.done
        assert stuck_port.stats.counter("completed").value == 0
        # The denial counter makes the stuck IP diagnosable.
        assert stuck_port.stats.counter("regulator_denials").value > 0
