"""Property-based invariants of regulation under live traffic.

These run the real system (not isolated units) with
hypothesis-chosen regulator parameters and check the guarantees the
paper's IP design promises:

* charged bytes can never exceed the token-bucket supply;
* burst-aware admission never overdraws a window;
* the achieved long-run rate is bounded by the configured rate.
"""

from hypothesis import given, settings, strategies as st

from repro.regulation.factory import RegulatorSpec
from repro.regulation.tightly_coupled import (
    TightlyCoupledConfig,
    TightlyCoupledRegulator,
)
from repro.sim.kernel import Simulator
from repro.soc.experiment import run_experiment
from repro.soc.presets import zcu102
from repro.traffic.accelerator import AcceleratorConfig, StreamAccelerator
from repro.traffic.patterns import SequentialPattern
from tests.conftest import MiniSystem


def _run_regulated_hog(window, budget, carryover, horizon):
    sim = Simulator()
    mini = MiniSystem(sim)
    reg = TightlyCoupledRegulator(
        sim,
        TightlyCoupledConfig(
            window_cycles=window,
            budget_bytes=budget,
            carryover_windows=carryover,
        ),
    )
    port = mini.add_port("hog", regulator=reg)
    accel = StreamAccelerator(
        sim,
        port,
        AcceleratorConfig(
            pattern=SequentialPattern(0, 1 << 20, 256),
            burst_beats=16,
        ),
    )
    accel.start()
    sim.run(until=horizon)
    return reg, port, sim.now


class TestChargeSupplyInvariant:
    @given(
        window=st.sampled_from([64, 256, 1024, 4096]),
        # Budget at least one burst (256 B): below that the oversize
        # forward-progress path intentionally overdraws (tested below).
        budget=st.integers(256, 16_384),
        carryover=st.integers(0, 3),
    )
    @settings(max_examples=25, deadline=None)
    def test_charged_bytes_bounded_by_supply(self, window, budget, carryover):
        horizon = window * 20
        reg, port, elapsed = _run_regulated_hog(
            window, budget, carryover, horizon
        )
        capacity = (carryover + 1) * budget
        windows_elapsed = elapsed // window
        supply = capacity + windows_elapsed * budget
        assert reg.charged_bytes <= supply

    def test_oversize_bursts_repay_debt(self):
        # Bursts (256 B) larger than capacity (64 B): the oversize
        # path admits one burst per refill-to-full, and the signed
        # credit counter repays the 192 B debt over the following
        # windows -- so the long-run byte rate stays at the budget
        # rate (64 B / 64 cyc = 1 B/cyc) despite every burst being
        # four times the capacity.
        window, budget = 64, 64
        horizon = window * 40
        reg, port, elapsed = _run_regulated_hog(window, budget, 0, horizon)
        supply = budget + (elapsed // window) * budget
        assert reg.charged_bytes <= supply + 256  # one burst of slack
        expected_txns = elapsed // (4 * window)
        assert abs(reg.charged_transactions - expected_txns) <= 2

    @given(budget=st.integers(256, 8_192))
    @settings(max_examples=15, deadline=None)
    def test_achieved_rate_below_configured(self, budget):
        window = 1024
        horizon = window * 40
        reg, port, elapsed = _run_regulated_hog(window, budget, 0, horizon)
        achieved = port.stats.counter("bytes").value / elapsed
        configured = budget / window
        # Completed-byte accounting can lag charges by the in-flight
        # amount; allow one burst of slack over the horizon.
        assert achieved <= configured + 256 / window


class TestPlatformLevelInvariant:
    @given(budget=st.sampled_from([512, 1024, 2048, 4096]))
    @settings(max_examples=8, deadline=None)
    def test_every_regulated_master_within_budget(self, budget):
        spec = RegulatorSpec(
            kind="tightly_coupled", window_cycles=1024, budget_bytes=budget
        )
        result = run_experiment(
            zcu102(num_accels=3, cpu_work=800, accel_regulator=spec)
        )
        configured = budget / 1024
        for i in range(3):
            rate = result.master(f"acc{i}").bandwidth_bytes_per_cycle
            assert rate <= configured * 1.05
