"""Unit tests for the experiment runner and result bundles."""

import pytest

from repro.errors import ConfigError
from repro.soc.experiment import run_experiment, run_solo_baseline
from repro.soc.platform import MasterSpec, PlatformConfig
from repro.soc.presets import zcu102


def small_config(num_accels=2, cpu_work=500):
    return zcu102(num_accels=num_accels, cpu_work=cpu_work)


class TestRunExperiment:
    def test_returns_results_for_all_masters(self):
        result = run_experiment(small_config())
        assert set(result.masters) == {"cpu0", "acc0", "acc1"}

    def test_critical_helpers(self):
        result = run_experiment(small_config())
        critical = result.critical()
        assert critical.name == "cpu0"
        assert critical.finished_at is not None
        assert result.critical_runtime() == critical.finished_at

    def test_latency_stats_populated(self):
        result = run_experiment(small_config())
        m = result.critical()
        assert 0 < m.latency_p50 <= m.latency_p95 <= m.latency_p99
        assert m.latency_mean > 0
        assert m.completed == 500

    def test_dram_results(self):
        result = run_experiment(small_config())
        assert result.dram.serviced > 0
        assert 0 < result.dram.utilization <= 1.0
        assert 0 <= result.dram.row_hit_rate <= 1.0

    def test_bandwidth_gbps(self):
        result = run_experiment(small_config())
        gbps = result.bandwidth_gbps("acc0")
        assert 0 < gbps < 4.0

    def test_unknown_master_rejected(self):
        result = run_experiment(small_config())
        with pytest.raises(ConfigError):
            result.master("ghost")

    def test_critical_unfinished_raises(self):
        # Horizon too small for the critical work under interference.
        result = run_experiment(small_config(cpu_work=100_000), max_cycles=1_000)
        with pytest.raises(ConfigError):
            result.critical_runtime()

    def test_no_critical_master_rejected_by_critical(self):
        config = PlatformConfig(
            masters=(
                MasterSpec(
                    name="acc0", workload="stream_read",
                    region_base=0, region_extent=1 << 20, work=4096,
                ),
            )
        )
        result = run_experiment(config, max_cycles=100_000)
        with pytest.raises(ConfigError):
            result.critical()


class TestSoloBaseline:
    def test_solo_is_faster_than_loaded(self):
        config = small_config(num_accels=4)
        loaded = run_experiment(config)
        solo = run_solo_baseline(config, "cpu0")
        assert solo.critical_runtime() < loaded.critical_runtime()

    def test_solo_keeps_regulator(self):
        from repro.regulation.factory import RegulatorSpec

        config = zcu102(
            num_accels=1,
            cpu_work=200,
            accel_regulator=RegulatorSpec(
                kind="tightly_coupled", budget_bytes=1024, window_cycles=1024
            ),
        )
        solo = run_solo_baseline(config, "acc0", max_cycles=100_000)
        # The accelerator alone still gets throttled to ~1 B/cycle.
        assert solo.master("acc0").bandwidth_bytes_per_cycle < 1.3
