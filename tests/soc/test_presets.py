"""Unit tests for the ZCU102-like preset."""

import pytest

from repro.errors import ConfigError
from repro.regulation.factory import RegulatorSpec
from repro.soc.presets import (
    REGION_BYTES,
    accel_names,
    cpu_names,
    zcu102,
    zcu102_clock,
    zcu102_dram,
)


class TestZcu102Preset:
    def test_default_shape(self):
        config = zcu102()
        assert cpu_names(config) == ("cpu0",)
        assert accel_names(config) == ("acc0", "acc1", "acc2", "acc3")
        assert config.masters[0].critical

    def test_counts(self):
        config = zcu102(num_cpus=2, num_accels=3)
        assert len(cpu_names(config)) == 2
        assert len(accel_names(config)) == 3
        # Only the first CPU is critical.
        criticals = [m.name for m in config.masters if m.critical]
        assert criticals == ["cpu0"]

    def test_regions_disjoint(self):
        config = zcu102(num_cpus=2, num_accels=4)
        regions = sorted(m.region_base for m in config.masters)
        for earlier, later in zip(regions, regions[1:]):
            assert later - earlier >= REGION_BYTES

    def test_regulators_applied_to_accels_only(self):
        spec = RegulatorSpec(kind="tightly_coupled")
        config = zcu102(num_accels=2, accel_regulator=spec)
        for master in config.masters:
            if master.name.startswith("acc"):
                assert master.regulator is spec
            else:
                assert master.regulator is None

    def test_arbiter_override(self):
        config = zcu102(arbiter="qos")
        assert config.interconnect.arbiter == "qos"

    def test_scheduler_override(self):
        config = zcu102(scheduler="fcfs")
        assert config.dram.scheduler == "fcfs"

    def test_validation(self):
        with pytest.raises(ConfigError):
            zcu102(num_cpus=0)
        with pytest.raises(ConfigError):
            zcu102(num_accels=-1)

    def test_clock_and_peak(self):
        clock = zcu102_clock()
        assert clock.freq_mhz == 250.0
        dram = zcu102_dram()
        assert dram.timing.peak_bytes_per_cycle == 16.0
        # 16 B/cycle at 250 MHz = 4 GB/s channel peak.
        assert clock.gbps_from_bytes_per_cycle(16.0) == pytest.approx(4.0)

    def test_zero_accels_allowed(self):
        config = zcu102(num_accels=0)
        assert accel_names(config) == ()
