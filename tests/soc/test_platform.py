"""Unit tests for declarative platform construction."""

import pytest

from repro.errors import ConfigError
from repro.regulation.factory import RegulatorSpec
from repro.regulation.tightly_coupled import TightlyCoupledRegulator
from repro.soc.platform import MasterSpec, Platform, PlatformConfig


def spec(name="m0", workload="latency_probe", critical=False, regulator=None,
         work=100, start_at=0):
    return MasterSpec(
        name=name,
        workload=workload,
        region_base=0x1000_0000,
        region_extent=1 << 20,
        work=work,
        regulator=regulator,
        critical=critical,
        start_at=start_at,
    )


class TestConfigValidation:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigError):
            PlatformConfig(masters=(spec("a"), spec("a")))

    def test_empty_platform_rejected(self):
        with pytest.raises(ConfigError):
            Platform(PlatformConfig(masters=()))

    def test_only_filters_masters(self):
        config = PlatformConfig(masters=(spec("a"), spec("b")))
        solo = config.only("a")
        assert [m.name for m in solo.masters] == ["a"]

    def test_only_unknown_rejected(self):
        config = PlatformConfig(masters=(spec("a"),))
        with pytest.raises(ConfigError):
            config.only("ghost")

    def test_peak_rate_exposed(self):
        config = PlatformConfig(masters=(spec("a"),))
        assert config.peak_bytes_per_cycle == 16.0


class TestConstruction:
    def test_builds_all_components(self):
        config = PlatformConfig(
            masters=(
                spec("cpu0", critical=True),
                spec("acc0", workload="stream_read", work=4096,
                     regulator=RegulatorSpec(kind="tightly_coupled")),
            )
        )
        platform = Platform(config)
        assert set(platform.ports) == {"cpu0", "acc0"}
        assert set(platform.masters) == {"cpu0", "acc0"}
        assert isinstance(platform.regulators["acc0"], TightlyCoupledRegulator)
        assert platform.qos_manager.masters == ["acc0"]
        assert platform.critical_names == ["cpu0"]

    def test_unregulated_master_has_no_regulator(self):
        platform = Platform(PlatformConfig(masters=(spec("m0"),)))
        assert platform.regulators == {}
        assert platform.ports["m0"].regulator is None

    def test_accessors_validate(self):
        platform = Platform(PlatformConfig(masters=(spec("m0"),)))
        with pytest.raises(ConfigError):
            platform.master("ghost")
        with pytest.raises(ConfigError):
            platform.port("ghost")


class TestExecution:
    def test_run_completes_bounded_work(self):
        platform = Platform(PlatformConfig(masters=(spec("m0", work=50),)))
        platform.run(1_000_000)
        assert platform.masters["m0"].done

    def test_stop_when_critical_done(self):
        config = PlatformConfig(
            masters=(
                spec("cpu0", critical=True, work=100),
                spec("acc0", workload="stream_read", work=None),
            )
        )
        platform = Platform(config)
        end = platform.run(10_000_000)
        assert platform.masters["cpu0"].done
        # Run ended at the critical finish, far before the horizon.
        assert end == platform.masters["cpu0"].finished_at
        assert end < 10_000_000

    def test_horizon_respected_without_critical(self):
        config = PlatformConfig(
            masters=(spec("acc0", workload="stream_read", work=None),)
        )
        platform = Platform(config)
        end = platform.run(50_000)
        assert end == 50_000

    def test_start_at_staggers_masters(self):
        config = PlatformConfig(
            masters=(spec("m0", work=1, start_at=7_000),)
        )
        platform = Platform(config)
        platform.run(1_000_000)
        assert platform.masters["m0"].finished_at > 7_000

    def test_max_cycles_validation(self):
        platform = Platform(PlatformConfig(masters=(spec("m0"),)))
        with pytest.raises(ConfigError):
            platform.run(0)

    def test_trace_masters_recorded(self):
        config = PlatformConfig(
            masters=(spec("m0", work=10),), trace_masters=("m0",)
        )
        platform = Platform(config)
        platform.run(1_000_000)
        assert len(platform.trace) == 10
