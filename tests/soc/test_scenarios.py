"""Tests for the named scenario library and result serialization."""

import pytest

from repro.errors import ConfigError
from repro.regulation.factory import RegulatorSpec
from repro.soc.experiment import run_experiment
from repro.soc.scenarios import SCENARIOS, make_scenario


class TestScenarioTemplates:
    def test_registry_contents(self):
        assert set(SCENARIOS) == {"adas", "video_pipeline", "industrial"}
        for scenario in SCENARIOS.values():
            assert scenario.description
            criticals = [a for a in scenario.actors if a.critical]
            assert len(criticals) == 1

    def test_unknown_scenario(self):
        with pytest.raises(ConfigError):
            make_scenario("datacenter")

    def test_unknown_regulator_target(self):
        with pytest.raises(ConfigError):
            make_scenario("adas", regulators={"ghost": RegulatorSpec()})

    def test_regions_disjoint(self):
        config = make_scenario("adas")
        spans = sorted(
            (m.region_base, m.region_base + m.region_extent)
            for m in config.masters
        )
        for (_, end_a), (start_b, _) in zip(spans, spans[1:]):
            assert start_b >= end_a


class TestScenarioExecution:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_runs_to_critical_completion(self, name):
        result = run_experiment(make_scenario(name), max_cycles=8_000_000)
        assert result.critical().finished_at is not None

    def test_regulation_improves_adas_control(self):
        unreg = run_experiment(make_scenario("adas"), max_cycles=8_000_000)
        spec = RegulatorSpec(
            kind="tightly_coupled", window_cycles=256, budget_bytes=410
        )
        regulated = run_experiment(
            make_scenario(
                "adas",
                regulators={
                    "camera": spec, "lidar": spec, "cnn": spec,
                    "logger": spec,
                },
            ),
            max_cycles=8_000_000,
        )
        assert regulated.critical_runtime() < unreg.critical_runtime()


class TestResultSerialization:
    def test_to_dict_structure(self):
        result = run_experiment(make_scenario("industrial"),
                                max_cycles=8_000_000)
        data = result.to_dict()
        assert data["elapsed"] == result.elapsed
        assert set(data["masters"]) == set(result.masters)
        assert data["dram"]["serviced"] == result.dram.serviced
        assert data["reconfig_log"] == []

    def test_json_roundtrip(self, tmp_path):
        from repro.soc.experiment import PlatformResult

        result = run_experiment(make_scenario("industrial"),
                                max_cycles=8_000_000)
        path = str(tmp_path / "run.json")
        result.save_json(path)
        back = PlatformResult.load_json(path)
        assert back["elapsed"] == result.elapsed
        assert (
            back["masters"]["control_loop"]["completed"]
            == result.master("control_loop").completed
        )
