"""Tests for the two-level (fabric + PS) platform and the bridge."""

import pytest

from repro.errors import ConfigError, ProtocolError
from repro.axi.bridge import Bridge
from repro.axi.port import MasterPort, PortConfig
from repro.regulation.factory import RegulatorSpec
from repro.soc.hierarchy import TwoLevelConfig, TwoLevelPlatform
from repro.soc.platform import MasterSpec

MB = 1 << 20


def cpu_spec(name="cpu0", work=800, critical=True):
    return MasterSpec(
        name=name, workload="latency_probe",
        region_base=0x1000_0000, region_extent=4 * MB,
        work=work, max_outstanding=4, critical=critical,
    )


def accel_spec(name, regulator=None, work=None):
    bases = {"acc0": 0x2000_0000, "acc1": 0x2040_0000, "acc2": 0x2080_0000,
             "acc3": 0x20C0_0000}
    return MasterSpec(
        name=name, workload="stream_read",
        region_base=bases[name], region_extent=4 * MB,
        work=work, regulator=regulator,
    )


class TestConfigValidation:
    def test_duplicate_names(self):
        with pytest.raises(ConfigError):
            TwoLevelConfig(cpus=(cpu_spec("x"),), accels=(accel_spec("acc0"),),
                           bridge_name="x")

    def test_needs_masters(self):
        with pytest.raises(ConfigError):
            TwoLevelConfig()

    def test_bridge_outstanding(self):
        with pytest.raises(ConfigError):
            TwoLevelConfig(cpus=(cpu_spec(),), bridge_outstanding=0)


class TestBridgeUnit:
    def test_double_master_rejected(self, sim, mini):
        port = mini.add_port("hp")
        Bridge(sim, port)
        with pytest.raises(ProtocolError):
            Bridge(sim, port)

    def test_double_upstream_rejected(self, sim, mini):
        port = mini.add_port("hp")
        bridge = Bridge(sim, port)
        bridge.set_upstream(object())
        with pytest.raises(ProtocolError):
            bridge.set_upstream(object())


class TestTwoLevelExecution:
    def _platform(self, accel_regulator=None, bridge_regulator=None,
                  accels=("acc0", "acc1")):
        config = TwoLevelConfig(
            cpus=(cpu_spec(),),
            accels=tuple(accel_spec(n, regulator=accel_regulator)
                         for n in accels),
            bridge_regulator=bridge_regulator,
        )
        return TwoLevelPlatform(config)

    def test_runs_and_completes_critical(self):
        platform = self._platform()
        end = platform.run(4_000_000)
        assert platform.masters["cpu0"].done
        assert end == platform.masters["cpu0"].finished_at

    def test_traffic_flows_through_bridge(self):
        platform = self._platform()
        platform.run(4_000_000)
        forwarded = platform.bridge.stats.counter("forwarded").value
        acc_completed = sum(
            platform.ports[n].stats.counter("completed").value
            for n in ("acc0", "acc1")
        )
        assert forwarded >= acc_completed > 0
        assert platform.bridge.in_flight <= platform.config.bridge_outstanding

    def test_cpu_bypasses_bridge(self):
        platform = self._platform()
        platform.run(4_000_000)
        # CPU transactions never appear at the fabric level.
        assert platform.ports["cpu0"].stats.counter("completed").value == 800
        fabric_names = {p.name for p in platform.fabric.ports}
        assert "cpu0" not in fabric_names

    def test_bridge_port_limits_accel_throughput(self):
        wide = self._platform()
        wide.run(300_000, stop_when_critical_done=False)
        bw_wide = sum(
            wide.ports[n].stats.counter("bytes").value for n in ("acc0", "acc1")
        )

        config = TwoLevelConfig(
            cpus=(cpu_spec(),),
            accels=(accel_spec("acc0"), accel_spec("acc1")),
            bridge_outstanding=1,
        )
        narrow = TwoLevelPlatform(config)
        narrow.run(300_000, stop_when_critical_done=False)
        bw_narrow = sum(
            narrow.ports[n].stats.counter("bytes").value
            for n in ("acc0", "acc1")
        )
        assert bw_narrow < bw_wide * 0.6

    def test_aggregate_regulator_bounds_total(self):
        bridge_reg = RegulatorSpec(
            kind="tightly_coupled", window_cycles=1024, budget_bytes=3277
        )  # ~20% of peak aggregate
        platform = self._platform(bridge_regulator=bridge_reg)
        horizon = 300_000
        platform.run(horizon, stop_when_critical_done=False)
        total = sum(
            platform.ports[n].stats.counter("bytes").value
            for n in ("acc0", "acc1")
        )
        assert total / horizon <= (3277 / 1024) * 1.05

    def test_per_master_regulators_at_fabric_level(self):
        accel_reg = RegulatorSpec(
            kind="tightly_coupled", window_cycles=1024, budget_bytes=1638
        )
        platform = self._platform(accel_regulator=accel_reg)
        horizon = 300_000
        platform.run(horizon, stop_when_critical_done=False)
        for name in ("acc0", "acc1"):
            rate = platform.ports[name].stats.counter("bytes").value / horizon
            assert rate <= (1638 / 1024) * 1.05

    def test_qos_manager_sees_all_regulators(self):
        accel_reg = RegulatorSpec(kind="tightly_coupled")
        bridge_reg = RegulatorSpec(kind="tightly_coupled")
        platform = self._platform(
            accel_regulator=accel_reg, bridge_regulator=bridge_reg
        )
        assert set(platform.qos_manager.masters) == {"hp0", "acc0", "acc1"}
