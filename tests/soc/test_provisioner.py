"""Tests for the shared regulator provisioner."""

import pytest

from repro.regulation.factory import RegulatorSpec
from repro.regulation.memguard import MemGuardRegulator
from repro.regulation.prem import PremRegulator
from repro.regulation.tdma import TdmaRegulator
from repro.regulation.tightly_coupled import TightlyCoupledRegulator
from repro.soc.hierarchy import TwoLevelConfig, TwoLevelPlatform
from repro.soc.platform import MasterSpec
from repro.soc.provision import RegulatorProvisioner

MB = 1 << 20


class TestProvisioner:
    def test_none_spec(self, sim):
        prov = RegulatorProvisioner(sim, [None])
        assert prov.build(None) is None
        assert prov.build(RegulatorSpec(kind="none")) is None

    def test_stagger_assigns_distinct_phases(self, sim):
        spec = RegulatorSpec(kind="tightly_coupled", window_cycles=400)
        prov = RegulatorProvisioner(sim, [spec, spec, spec, spec])
        regs = [prov.build(spec) for _ in range(4)]
        phases = sorted(r.config.window_phase for r in regs)
        assert phases == [0, 100, 200, 300]

    def test_single_regulator_not_staggered(self, sim):
        spec = RegulatorSpec(kind="tightly_coupled", window_cycles=400)
        prov = RegulatorProvisioner(sim, [spec])
        assert prov.build(spec).config.window_phase == 0

    def test_explicit_phase_preserved(self, sim):
        spec = RegulatorSpec(kind="tightly_coupled", window_phase=77)
        prov = RegulatorProvisioner(sim, [spec, spec])
        assert prov.build(spec).config.window_phase == 77

    def test_tdma_frame_shared_and_slots_distinct(self, sim):
        spec = RegulatorSpec(kind="tdma", window_cycles=200, tdma_slots=5)
        prov = RegulatorProvisioner(sim, [spec, spec])
        a, b = prov.build(spec), prov.build(spec)
        assert a.schedule is b.schedule is prov.tdma_schedule
        assert {a.slot_index, b.slot_index} == {0, 1}
        assert prov.tdma_schedule.num_slots == 5

    def test_prem_controller_shared(self, sim):
        spec = RegulatorSpec(kind="prem")
        prov = RegulatorProvisioner(sim, [spec, spec])
        a, b = prov.build(spec), prov.build(spec)
        assert a.controller is b.controller is prov.prem_controller

    def test_memguard_pool_shared(self, sim):
        spec = RegulatorSpec(kind="memguard", reclaim=True)
        prov = RegulatorProvisioner(sim, [spec, spec])
        a, b = prov.build(spec), prov.build(spec)
        assert a.pool is b.pool is prov.reclaim_pool

    def test_idle_probe_wired_for_work_conserving(self, sim):
        spec = RegulatorSpec(kind="tightly_coupled", work_conserving=True)
        prov = RegulatorProvisioner(sim, [spec], dram_idle_probe=lambda: True)
        reg = prov.build(spec)
        assert reg._idle_probe is not None

    def test_kind_construction(self, sim):
        prov = RegulatorProvisioner(
            sim,
            [RegulatorSpec(kind="tdma"), RegulatorSpec(kind="prem"),
             RegulatorSpec(kind="memguard")],
        )
        assert isinstance(prov.build(RegulatorSpec(kind="tdma")), TdmaRegulator)
        assert isinstance(prov.build(RegulatorSpec(kind="prem")), PremRegulator)
        assert isinstance(
            prov.build(RegulatorSpec(kind="memguard")), MemGuardRegulator
        )
        assert isinstance(
            prov.build(RegulatorSpec(kind="tightly_coupled")),
            TightlyCoupledRegulator,
        )


class TestHierarchySchemes:
    """TDMA and PREM now work in the two-level topology too."""

    def _config(self, accel_regulator):
        return TwoLevelConfig(
            cpus=(
                MasterSpec(
                    name="cpu0", workload="latency_probe",
                    region_base=0x1000_0000, region_extent=4 * MB,
                    work=400, max_outstanding=4, critical=True,
                ),
            ),
            accels=tuple(
                MasterSpec(
                    name=f"acc{i}", workload="stream_read",
                    region_base=0x2000_0000 + i * 4 * MB,
                    region_extent=4 * MB,
                    regulator=accel_regulator,
                )
                for i in range(2)
            ),
        )

    def test_tdma_in_hierarchy(self):
        spec = RegulatorSpec(kind="tdma", window_cycles=512, tdma_slots=4)
        platform = TwoLevelPlatform(self._config(spec))
        assert platform.tdma_schedule is not None
        slots = {platform.regulators[f"acc{i}"].slot_index for i in range(2)}
        assert slots == {0, 1}
        platform.run(4_000_000)
        assert platform.masters["cpu0"].done

    def test_prem_in_hierarchy_protects_critical(self):
        spec = RegulatorSpec(kind="prem", prem_hold_cycles=1024)
        prem = TwoLevelPlatform(self._config(spec))
        prem.run(4_000_000)
        unreg = TwoLevelPlatform(self._config(None))
        unreg.run(4_000_000)
        assert (
            prem.masters["cpu0"].finished_at
            < unreg.masters["cpu0"].finished_at
        )
