"""Tests for the KV260 preset and cross-platform sanity."""

import pytest

from repro.errors import ConfigError
from repro.regulation.factory import RegulatorSpec
from repro.soc.experiment import run_experiment
from repro.soc.presets import kv260, zcu102


class TestKv260Shape:
    def test_defaults(self):
        config = kv260()
        names = [m.name for m in config.masters]
        assert names == ["cpu0", "acc0", "acc1"]
        assert config.masters[0].critical
        # Half-width channel: 8 B/beat.
        assert config.peak_bytes_per_cycle == 8.0
        assert config.clock.freq_mhz == 200.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            kv260(num_accels=-1)

    def test_regulator_applied(self):
        spec = RegulatorSpec(kind="tightly_coupled")
        config = kv260(num_accels=1, accel_regulator=spec)
        assert config.masters[1].regulator is spec


class TestCrossPlatformSanity:
    """Qualitative results must survive the change of board."""

    def test_interference_shape_holds(self):
        solo = run_experiment(kv260(num_accels=0, cpu_work=1000))
        loaded = run_experiment(kv260(num_accels=2, cpu_work=1000))
        assert loaded.critical_runtime() > solo.critical_runtime() * 2

    def test_regulation_protects(self):
        spec = RegulatorSpec(
            kind="tightly_coupled", window_cycles=256,
            budget_bytes=round(0.1 * 8.0 * 256),
        )
        unreg = run_experiment(kv260(num_accels=2, cpu_work=1000))
        reg = run_experiment(
            kv260(num_accels=2, cpu_work=1000, accel_regulator=spec)
        )
        assert reg.critical_runtime() < unreg.critical_runtime()

    def test_regulated_rate_bounded(self):
        spec = RegulatorSpec(
            kind="tightly_coupled", window_cycles=256,
            budget_bytes=round(0.2 * 8.0 * 256),
        )
        result = run_experiment(
            kv260(num_accels=2, cpu_work=1000, accel_regulator=spec)
        )
        configured = 0.2 * 8.0
        for name in ("acc0", "acc1"):
            assert (
                result.master(name).bandwidth_bytes_per_cycle
                <= configured * 1.05
            )

    def test_smaller_channel_saturates_sooner(self):
        kv = run_experiment(kv260(num_accels=2, cpu_work=1000))
        zu = run_experiment(zcu102(num_accels=2, cpu_work=1000))
        # Same hog count hurts the narrower channel more.
        kv_solo = run_experiment(kv260(num_accels=0, cpu_work=1000))
        zu_solo = run_experiment(zcu102(num_accels=0, cpu_work=1000))
        kv_slowdown = kv.critical_runtime() / kv_solo.critical_runtime()
        zu_slowdown = zu.critical_runtime() / zu_solo.critical_runtime()
        assert kv_slowdown > zu_slowdown
