"""PlatformResult / report compatibility with the two-level platform."""

from repro.analysis.report import render_report
from repro.soc.experiment import PlatformResult
from repro.soc.hierarchy import TwoLevelConfig, TwoLevelPlatform
from repro.soc.platform import MasterSpec

MB = 1 << 20


def build_platform():
    config = TwoLevelConfig(
        cpus=(
            MasterSpec(
                name="cpu0", workload="latency_probe",
                region_base=0x1000_0000, region_extent=4 * MB,
                work=500, max_outstanding=4, critical=True,
            ),
        ),
        accels=(
            MasterSpec(
                name="acc0", workload="stream_read",
                region_base=0x2000_0000, region_extent=4 * MB,
                work=32 * 1024,
            ),
        ),
    )
    return TwoLevelPlatform(config)


class TestTwoLevelResults:
    def test_platform_result_includes_bridge_port(self):
        platform = build_platform()
        elapsed = platform.run(4_000_000, stop_when_critical_done=False)
        result = PlatformResult(platform, elapsed)
        assert set(result.masters) == {"cpu0", "acc0", "hp0"}
        # The bridge port carries the accelerator's traffic.
        assert result.master("hp0").bytes_moved == result.master(
            "acc0"
        ).bytes_moved
        assert result.master("hp0").finished_at is None

    def test_critical_helpers_work(self):
        platform = build_platform()
        elapsed = platform.run(4_000_000, stop_when_critical_done=False)
        result = PlatformResult(platform, elapsed)
        assert result.critical().name == "cpu0"
        assert result.critical_runtime() > 0

    def test_report_renders(self):
        platform = build_platform()
        elapsed = platform.run(4_000_000, stop_when_critical_done=False)
        result = PlatformResult(platform, elapsed)
        text = render_report(result, title="two-level")
        assert "hp0" in text
        assert "cpu0" in text

    def test_json_export(self, tmp_path):
        platform = build_platform()
        elapsed = platform.run(4_000_000, stop_when_critical_done=False)
        result = PlatformResult(platform, elapsed)
        path = str(tmp_path / "two_level.json")
        result.save_json(path)
        back = PlatformResult.load_json(path)
        assert "hp0" in back["masters"]
