"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["regulate"])
        assert args.kind == "tightly_coupled"
        assert args.share == 0.1
        assert args.hogs == 4

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_resources(self, capsys):
        assert main(["resources", "--channels", "1", "2"]) == 0
        out = capsys.readouterr().out
        assert "LUTs" in out
        assert "channels" in out

    def test_interfere_small(self, capsys):
        assert main(["interfere", "--hogs", "1", "--work", "300"]) == 0
        out = capsys.readouterr().out
        assert "slowdown" in out
        # One row per hog count 0..1 plus header/ruler/title.
        assert len(out.strip().splitlines()) == 5

    def test_regulate_tc(self, capsys):
        code = main(
            ["regulate", "--kind", "tightly_coupled", "--share", "0.2",
             "--hogs", "1", "--work", "300"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "acc0" in out and "cpu0" in out

    def test_regulate_memguard_with_reclaim(self, capsys):
        code = main(
            ["regulate", "--kind", "memguard", "--share", "0.2",
             "--hogs", "2", "--work", "300", "--reclaim",
             "--period", "20000"]
        )
        assert code == 0

    def test_accuracy(self, capsys):
        code = main(
            ["accuracy", "--share", "0.2", "--horizon", "100000"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "tightly_coupled" in out and "memguard" in out

    def test_bound_sound(self, capsys):
        assert main(["bound", "--hogs", "2", "--work", "500"]) == 0
        out = capsys.readouterr().out
        assert "analytic_bound_cyc" in out

    def test_scenario_list(self, capsys):
        assert main(["scenario", "--list"]) == 0
        out = capsys.readouterr().out
        assert "adas" in out and "industrial" in out

    def test_scenario_run(self, capsys):
        assert main(["scenario", "industrial", "--kind", "none"]) == 0
        out = capsys.readouterr().out
        assert "control_loop" in out

    def test_scenario_unknown(self, capsys):
        assert main(["scenario", "warehouse"]) == 2

    def test_report(self, capsys):
        code = main(
            ["report", "--hogs", "1", "--work", "300", "--share", "0.2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Masters" in out
        assert "slowdown" in out
