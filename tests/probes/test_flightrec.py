"""SLO rules and the QoS-violation flight recorder."""

import json
import os

import pytest

from repro.errors import ProbeError
from repro.probes.flightrec import (
    FLIGHTREC_ENV,
    SLO_ENV,
    FlightRecorder,
)
from repro.probes.sampler import ProbeSampler
from repro.probes.slo import SloRule, parse_rules, rules_from_json
from repro.soc.platform import Platform
from repro.soc.presets import zcu102


class TestSloRules:
    def test_string_dsl(self):
        rule = parse_rules(["port/acc0/last_latency<=500"])[0]
        assert rule.probe == "port/acc0/last_latency"
        assert rule.op == "<="
        assert rule.limit == 500
        assert rule.name == "port/acc0/last_latency<=500"

    def test_dict_form_with_name(self):
        rule = parse_rules(
            [{"probe": "reg/a/tokens", "op": ">=", "limit": 1, "name": "floor"}]
        )[0]
        assert rule.name == "floor"
        assert rule.op == ">="

    def test_violated_semantics(self):
        upper = SloRule(probe="p", op="<=", limit=10)
        assert upper.violated(11)
        assert not upper.violated(10)
        lower = SloRule(probe="p", op=">=", limit=10)
        assert lower.violated(9)
        assert not lower.violated(10)

    def test_bad_op_rejected(self):
        with pytest.raises(ProbeError):
            SloRule(probe="p", op="==", limit=1)
        with pytest.raises(ProbeError):
            parse_rules(["p!!5"])

    def test_rules_json_must_be_a_list(self):
        with pytest.raises(ProbeError):
            rules_from_json('{"probe": "p"}')
        assert len(rules_from_json('["a<=1", "b>=2"]')) == 2


def _run_recorded(tmp_path, rules, period=512, max_dumps=1):
    platform = Platform(zcu102(num_accels=2, cpu_work=300))
    sampler = ProbeSampler(
        platform.sim, platform.probes, period=period, capacity=32
    )
    recorder = FlightRecorder(
        parse_rules(rules),
        out_dir=str(tmp_path / "flightrec"),
        max_dumps=max_dumps,
        context={"experiment": "unit"},
    )
    recorder.arm(sampler)
    sampler.attach()
    platform.run(300_000)
    return recorder, sampler


class TestFlightRecorder:
    def test_injected_violation_dumps_pre_violation_history(self, tmp_path):
        # Total DRAM bytes exceed 1 byte immediately: guaranteed to
        # trip on an early frame, with all earlier frames retained.
        recorder, sampler = _run_recorded(
            tmp_path, ["dram/bytes<=1"], period=256
        )
        assert len(recorder.violations) == 1
        assert len(recorder.dump_dirs) == 1
        dump = recorder.dump_dirs[0]
        assert os.path.basename(dump) == "dump_000"

        violation = json.load(open(os.path.join(dump, "violation.json")))
        assert violation["violation"]["rule"]["probe"] == "dram/bytes"
        assert violation["violation"]["value"] > 1
        assert violation["context"]["experiment"] == "unit"
        assert violation["sample_period"] == 256
        assert any(
            p["name"] == "dram/bytes" for p in violation["probes"]
        )

        history = json.load(open(os.path.join(dump, "history.json")))
        assert history, "history must retain the violating frame"
        assert history[-1]["time"] == recorder.violations[0].time
        assert history[-1]["values"]["dram/bytes"] > 1

        trace = json.load(open(os.path.join(dump, "trace.json")))
        phases = {e["ph"] for e in trace["traceEvents"]}
        assert phases == {"C", "i"}
        marker = [e for e in trace["traceEvents"] if e["ph"] == "i"]
        assert marker[0]["ts"] == recorder.violations[0].time

    def test_no_violation_no_dump(self, tmp_path):
        recorder, _ = _run_recorded(tmp_path, ["kernel/now>=0"])
        assert recorder.violations == []
        assert not os.path.exists(str(tmp_path / "flightrec"))

    def test_max_dumps_bounds_dumping(self, tmp_path):
        recorder, _ = _run_recorded(
            tmp_path, ["dram/bytes<=1"], period=256, max_dumps=2
        )
        assert [os.path.basename(d) for d in recorder.dump_dirs] == [
            "dump_000", "dump_001",
        ]

    def test_unknown_probe_rejected_at_arm(self, tmp_path):
        platform = Platform(zcu102(num_accels=1, cpu_work=100))
        sampler = ProbeSampler(platform.sim, platform.probes, period=256)
        recorder = FlightRecorder(
            parse_rules(["no/such/probe<=1"]), out_dir=str(tmp_path)
        )
        with pytest.raises(ProbeError):
            recorder.arm(sampler)

    def test_double_arm_rejected(self, tmp_path):
        platform = Platform(zcu102(num_accels=1, cpu_work=100))
        sampler = ProbeSampler(platform.sim, platform.probes, period=256)
        recorder = FlightRecorder(
            parse_rules(["kernel/now<=10"]), out_dir=str(tmp_path)
        )
        recorder.arm(sampler)
        with pytest.raises(ProbeError):
            recorder.arm(sampler)


class TestFromEnv:
    def test_unset_means_no_recorder(self, monkeypatch):
        monkeypatch.delenv(SLO_ENV, raising=False)
        assert FlightRecorder.from_env() is None

    def test_inline_json(self, monkeypatch, tmp_path):
        monkeypatch.setenv(SLO_ENV, '["dram/bytes<=1"]')
        monkeypatch.setenv(FLIGHTREC_ENV, str(tmp_path / "out"))
        recorder = FlightRecorder.from_env(context={"spec": "abc"})
        assert recorder is not None
        assert recorder.out_dir == str(tmp_path / "out")
        assert recorder.rules[0].probe == "dram/bytes"
        assert recorder.context == {"spec": "abc"}

    def test_rules_file(self, monkeypatch, tmp_path):
        rules_path = tmp_path / "slo.json"
        rules_path.write_text('["port/acc0/bytes<=4096"]')
        monkeypatch.setenv(SLO_ENV, str(rules_path))
        recorder = FlightRecorder.from_env()
        assert recorder.rules[0].limit == 4096

    def test_missing_rules_file_rejected(self, monkeypatch, tmp_path):
        monkeypatch.setenv(SLO_ENV, str(tmp_path / "nope.json"))
        with pytest.raises(ProbeError):
            FlightRecorder.from_env()

    def test_execute_spec_end_to_end(self, monkeypatch, tmp_path):
        """The env knobs alone arm a recorder inside execute_spec and
        an injected violation lands a dump with history."""
        from repro.runner import RunSpec, execute_spec

        monkeypatch.setenv(SLO_ENV, '["dram/bytes<=1"]')
        monkeypatch.setenv(FLIGHTREC_ENV, str(tmp_path / "rec"))
        monkeypatch.setenv("REPRO_PROBE_PERIOD", "256")
        spec = RunSpec(
            config=zcu102(num_accels=2, cpu_work=300), max_cycles=200_000
        )
        execute_spec(spec)
        dump = tmp_path / "rec" / "dump_000"
        assert dump.is_dir()
        violation = json.loads((dump / "violation.json").read_text())
        assert violation["context"]["spec"] == spec.content_hash()
        history = json.loads((dump / "history.json").read_text())
        assert history
