"""Sampler mechanics and the attached-vs-detached differential.

The headline guarantee of the probe plane: attaching a sampler (or a
publisher-driven sampler inside :func:`repro.runner.execute_spec`)
leaves every reported result **byte-identical**, on both scheduler
backends.
"""

import pytest

from repro.errors import ProbeError
from repro.probes.publish import clear_publisher, set_publisher
from repro.probes.sampler import (
    DEFAULT_PROBE_PERIOD,
    PROBE_PERIOD_ENV,
    ProbeSampler,
    resolve_probe_period,
)
from repro.runner import RunSpec, execute_spec
from repro.soc.platform import Platform
from repro.soc.presets import zcu102


@pytest.fixture
def platform():
    return Platform(zcu102(num_accels=1, cpu_work=200))


class TestPeriodResolution:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(PROBE_PERIOD_ENV, "999")
        assert resolve_probe_period(128) == 128

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(PROBE_PERIOD_ENV, "2048")
        assert resolve_probe_period() == 2048

    def test_default(self, monkeypatch):
        monkeypatch.delenv(PROBE_PERIOD_ENV, raising=False)
        assert resolve_probe_period() == DEFAULT_PROBE_PERIOD

    def test_bad_env_rejected(self, monkeypatch):
        monkeypatch.setenv(PROBE_PERIOD_ENV, "soon")
        with pytest.raises(ProbeError):
            resolve_probe_period()

    def test_nonpositive_rejected(self):
        with pytest.raises(ProbeError):
            resolve_probe_period(0)


class TestSampling:
    def test_samples_every_period(self, platform):
        sampler = ProbeSampler(
            platform.sim, platform.probes, period=500, capacity=64
        )
        sampler.attach()
        platform.run(10_000, stop_when_critical_done=False)
        assert sampler.frames_sampled == 20
        frames = sampler.frames()
        assert [f["time"] for f in frames[:3]] == [500, 1000, 1500]
        assert frames[-1]["values"]["kernel/now"] == 10_000

    def test_ring_wraps_keeping_newest(self, platform):
        sampler = ProbeSampler(
            platform.sim, platform.probes, period=500, capacity=4
        )
        sampler.attach()
        platform.run(10_000, stop_when_critical_done=False)
        assert sampler.frames_sampled == 20
        assert sampler.frames_dropped == 16
        frames = sampler.frames()
        assert len(frames) == 4
        assert [f["time"] for f in frames] == [8500, 9000, 9500, 10_000]
        assert sampler.last_frame()["time"] == 10_000

    def test_probe_subset_selection(self, platform):
        sampler = ProbeSampler(
            platform.sim, platform.probes, probes=["port/*/bytes"], period=500
        )
        sampler.attach()
        platform.run(2_000, stop_when_critical_done=False)
        values = sampler.last_frame()["values"]
        assert set(values) == set(sampler.names)
        assert all(name.endswith("/bytes") for name in values)

    def test_double_attach_rejected(self, platform):
        sampler = ProbeSampler(platform.sim, platform.probes, period=500)
        sampler.attach()
        with pytest.raises(ProbeError):
            sampler.attach()

    def test_detach_stops_sampling(self, platform):
        sampler = ProbeSampler(platform.sim, platform.probes, period=500)
        sampler.attach()
        platform.sim.schedule(1600, sampler.detach)
        platform.run(10_000, stop_when_critical_done=False)
        assert sampler.frames_sampled == 3

    def test_consumers_see_live_rows(self, platform):
        sampler = ProbeSampler(platform.sim, platform.probes, period=500)
        seen = []
        sampler.consumers.append(
            lambda now, names, row: seen.append((now, dict(zip(names, row))))
        )
        sampler.attach()
        platform.run(1_500, stop_when_critical_done=False)
        assert [now for now, _ in seen] == [500, 1000, 1500]
        assert seen[0][1]["kernel/now"] == 500

    def test_daemon_ticks_do_not_keep_run_alive(self):
        """A finite workload still ends the run early; the sampler's
        self-rescheduling tick must not pin the event queue."""
        platform = Platform(zcu102(num_accels=0, cpu_work=50))
        sampler = ProbeSampler(platform.sim, platform.probes, period=100)
        sampler.attach()
        elapsed = platform.run(5_000_000)
        assert elapsed < 5_000_000


def _summary_json(seed, scheduler, attach, monkeypatch):
    monkeypatch.setenv("REPRO_SCHED", scheduler)
    spec = RunSpec(
        config=zcu102(num_accels=2, cpu_work=300, seed=seed),
        max_cycles=200_000,
    )
    if attach:
        events = []
        set_publisher(events.append)
        try:
            text = execute_spec(spec).to_json()
        finally:
            clear_publisher()
        kinds = [e["event"] for e in events]
        assert kinds[0] == "meta"
        assert kinds[-1] == "end"
        assert "frame" in kinds
        return text
    return execute_spec(spec).to_json()


@pytest.mark.parametrize("scheduler", ["heap", "calendar"])
class TestBitIdentity:
    def test_publisher_sampler_leaves_results_byte_identical(
        self, scheduler, monkeypatch
    ):
        """execute_spec with the probe plane active (publisher set -->
        sampler attached, frames streamed) returns the same serialized
        summary as a bare run, on each scheduler backend."""
        monkeypatch.setenv("REPRO_PROBE_PERIOD", "512")
        bare = _summary_json(3, scheduler, attach=False, monkeypatch=monkeypatch)
        probed = _summary_json(3, scheduler, attach=True, monkeypatch=monkeypatch)
        assert bare == probed

    def test_direct_sampler_leaves_platform_results_identical(
        self, scheduler, monkeypatch
    ):
        monkeypatch.setenv("REPRO_SCHED", scheduler)

        def run(attach):
            platform = Platform(zcu102(num_accels=1, cpu_work=200, seed=7))
            if attach:
                sampler = ProbeSampler(
                    platform.sim, platform.probes, period=256
                )
                sampler.attach()
            elapsed = platform.run(150_000)
            port = platform.port("cpu0")
            return (
                elapsed,
                port.stats.counter("bytes").value,
                port.stats.sampler("latency").summary(),
            )

        assert run(False) == run(True)
