"""The probe register file: naming, selection, and read purity."""

import pytest

from repro.errors import ProbeError
from repro.probes.map import ProbeMap, build_probe_map
from repro.regulation.factory import RegulatorSpec
from repro.soc.platform import Platform
from repro.soc.presets import zcu102


@pytest.fixture
def platform():
    spec = RegulatorSpec(
        kind="tightly_coupled", window_cycles=256, budget_bytes=512
    )
    return Platform(zcu102(num_accels=2, cpu_work=200, accel_regulator=spec))


class TestRegistration:
    def test_duplicate_name_rejected(self):
        probes = ProbeMap()
        probes.register("a/b", lambda: 0)
        with pytest.raises(ProbeError):
            probes.register("a/b", lambda: 1)

    def test_empty_name_rejected(self):
        with pytest.raises(ProbeError):
            ProbeMap().register("", lambda: 0)

    def test_addresses_are_registration_order(self):
        probes = ProbeMap()
        probes.register("x", lambda: 0)
        probes.register("y", lambda: 1)
        assert probes.get("x").addr == 0
        assert probes.get("y").addr == 1
        assert probes.by_addr(1).name == "y"
        with pytest.raises(ProbeError):
            probes.by_addr(2)


class TestPlatformMap:
    def test_platform_builds_probe_map(self, platform):
        names = set(platform.probes.names())
        assert "kernel/now" in names
        assert "dram/queue_depth" in names
        # One port channel per master, regulator channels only for the
        # regulated hogs.
        assert "port/cpu0/bytes" in names
        assert "port/acc0/outstanding" in names
        assert "reg/acc0/tokens" in names
        assert "reg/acc1/budget_bytes" in names
        assert "reg/cpu0/tokens" not in names

    def test_metadata_carries_master_and_unit(self, platform):
        probe = platform.probes.get("port/acc0/bytes")
        assert probe.master == "acc0"
        assert probe.unit == "bytes"
        described = probe.describe()
        assert described["name"] == "port/acc0/bytes"
        assert described["addr"] == probe.addr

    def test_select_globs(self, platform):
        selected = platform.probes.select(["port/*/bytes"])
        assert selected
        assert all(p.name.endswith("/bytes") for p in selected)
        assert {p.master for p in selected} == {"cpu0", "acc0", "acc1"}

    def test_select_nothing_matching_rejected(self, platform):
        with pytest.raises(ProbeError):
            platform.probes.select(["no/such/probe"])

    def test_select_none_is_everything(self, platform):
        assert len(platform.probes.select(None)) == len(platform.probes)

    def test_unknown_name_rejected(self, platform):
        with pytest.raises(ProbeError):
            platform.probes.get("port/ghost/bytes")
        with pytest.raises(ProbeError):
            platform.probes.read("port/ghost/bytes")

    def test_snapshot_matches_reads(self, platform):
        platform.run(20_000)
        snap = platform.probes.snapshot()
        assert snap["kernel/now"] == platform.sim.now
        assert snap["port/acc0/bytes"] == (
            platform.port("acc0").stats.counter("bytes").value
        )


class TestReadPurity:
    def test_snapshot_is_idempotent(self, platform):
        """Reading every probe twice with no cycles in between returns
        identical values -- reads must not mutate observable state."""
        platform.run(20_000)
        assert platform.probes.snapshot() == platform.probes.snapshot()

    def test_token_probe_does_not_advance_refill_state(self, platform):
        """The tokens probe uses the pure peek (``peek_tokens``), not
        ``tokens_at`` whose lazy refill bumps the telemetry-visible
        ``refills`` counter."""
        platform.run(20_000)
        reg = platform.regulators["acc0"]
        refills_before = reg._bucket.refills
        for _ in range(5):
            platform.probes.read("reg/acc0/tokens")
        assert reg._bucket.refills == refills_before

    def test_rebuild_probe_map_is_stable(self, platform):
        rebuilt = build_probe_map(platform)
        assert rebuilt.names() == platform.probes.names()
