"""Tests for split read/write address channels."""

import pytest

from repro.errors import ProtocolError
from repro.axi.interconnect import InterconnectConfig
from repro.axi.port import MasterPort, PortConfig
from repro.axi.txn import Transaction
from repro.regulation.base import BandwidthRegulator
from repro.sim.kernel import Simulator
from tests.conftest import MiniSystem


def submit(port, sim, is_write, n=1, burst_len=4, base=0):
    txns = []
    for i in range(n):
        txn = Transaction(
            master=port.name, is_write=is_write, addr=base + i * 256,
            burst_len=burst_len, created=sim.now,
        )
        port.submit(txn)
        txns.append(txn)
    return txns


class _WriteBlocker(BandwidthRegulator):
    """Denies writes forever; admits reads."""

    def may_issue(self, txn, now):
        return not txn.is_write

    def next_opportunity(self, txn, now):
        return now + 10_000


class TestSplitPortQueues:
    def test_directions_queue_separately(self, sim, mini_norefresh):
        port = MasterPort(
            sim, PortConfig(name="m0", split_channels=True)
        )
        mini_norefresh.interconnect.attach_port(port)
        submit(port, sim, is_write=True, n=2)
        submit(port, sim, is_write=False, n=3)
        assert port.queue_depth == 5
        sim.run()
        assert port.stats.counter("completed").value == 5

    def test_head_direction_filter(self, sim, mini_norefresh):
        port = MasterPort(sim, PortConfig(name="m0", split_channels=True))
        mini_norefresh.interconnect.attach_port(port)
        write = Transaction(master="m0", is_write=True, addr=0, burst_len=1)
        port.submit(write)
        assert port.head(want_write=False) is None
        assert port.head(want_write=True) is write
        assert port.head() is write

    def test_accept_requires_direction_on_split_port(self, sim, mini_norefresh):
        port = MasterPort(sim, PortConfig(name="m0", split_channels=True))
        mini_norefresh.interconnect.attach_port(port)
        submit(port, sim, is_write=False)
        with pytest.raises(ProtocolError):
            port.accept_head()

    def test_nonsplit_head_filters_by_direction(self, sim, mini_norefresh):
        port = mini_norefresh.add_port("m0")
        write = Transaction(master="m0", is_write=True, addr=0, burst_len=1)
        port.submit(write)
        assert port.head(want_write=False) is None
        assert port.head(want_write=True) is write


class TestHeadOfLineBlocking:
    def _run(self, split):
        sim = Simulator()
        mini = MiniSystem(sim)
        port = MasterPort(
            sim,
            PortConfig(name="mix", split_channels=split, max_outstanding=8),
            regulator=_WriteBlocker(),
        )
        mini.interconnect.attach_port(port)
        # A write at the head, reads stuck behind it (or not).
        submit(port, sim, is_write=True, n=1)
        reads = submit(port, sim, is_write=False, n=4, base=1 << 16)
        sim.run(until=5_000)
        return [r.completed for r in reads]

    def test_combined_queue_blocks_reads_behind_stalled_write(self):
        completions = self._run(split=False)
        assert all(c < 0 for c in completions)  # nothing completed

    def test_split_channels_let_reads_pass(self):
        completions = self._run(split=True)
        assert all(c > 0 for c in completions)


class TestSplitInterconnect:
    def test_parallel_read_write_acceptance(self, sim):
        mini = MiniSystem(
            sim,
            interconnect_config=InterconnectConfig(split_addr_channels=True),
        )
        reader = mini.add_port("reader")
        writer = mini.add_port("writer")
        r = submit(reader, sim, is_write=False, n=1)[0]
        w = submit(writer, sim, is_write=True, n=1, base=1 << 16)[0]
        sim.run()
        # Both address phases were accepted on the same cycle.
        assert r.accepted == w.accepted

    def test_combined_channel_serializes(self, sim):
        mini = MiniSystem(sim)
        reader = mini.add_port("reader")
        writer = mini.add_port("writer")
        r = submit(reader, sim, is_write=False, n=1)[0]
        w = submit(writer, sim, is_write=True, n=1, base=1 << 16)[0]
        sim.run()
        assert r.accepted != w.accepted

    def test_split_everything_end_to_end(self, sim):
        mini = MiniSystem(
            sim,
            interconnect_config=InterconnectConfig(split_addr_channels=True),
        )
        port = MasterPort(
            sim, PortConfig(name="mix", split_channels=True,
                            max_outstanding=16)
        )
        mini.interconnect.attach_port(port)
        reads = submit(port, sim, is_write=False, n=10)
        writes = submit(port, sim, is_write=True, n=10, base=1 << 16)
        sim.run()
        assert all(t.completed > 0 for t in reads + writes)
        assert port.stats.counter("completed").value == 20
