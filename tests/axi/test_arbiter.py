"""Unit tests for the arbitration policies."""

import pytest

from repro.errors import ConfigError
from repro.axi.arbiter import (
    FixedPriorityArbiter,
    QosArbiter,
    RoundRobinArbiter,
    make_arbiter,
)
from repro.axi.txn import Transaction


def txn(qos=0):
    return Transaction(
        master="m", is_write=False, addr=0, burst_len=1, qos=qos
    )


class TestRoundRobin:
    def test_rotates_across_ports(self):
        arb = RoundRobinArbiter()
        candidates = [(0, txn()), (1, txn()), (2, txn())]
        winners = [arb.select(candidates) for _ in range(6)]
        assert winners == [0, 1, 2, 0, 1, 2]

    def test_skips_missing_ports(self):
        arb = RoundRobinArbiter()
        assert arb.select([(0, txn()), (2, txn())]) == 0
        # After 0 wins, 1 is absent so 2 is next.
        assert arb.select([(0, txn()), (2, txn())]) == 2
        assert arb.select([(0, txn()), (2, txn())]) == 0

    def test_single_candidate(self):
        arb = RoundRobinArbiter()
        assert arb.select([(3, txn())]) == 3
        assert arb.select([(3, txn())]) == 3

    def test_no_starvation_over_many_rounds(self):
        arb = RoundRobinArbiter()
        candidates = [(i, txn()) for i in range(4)]
        wins = {i: 0 for i in range(4)}
        for _ in range(400):
            wins[arb.select(candidates)] += 1
        assert all(count == 100 for count in wins.values())


class TestFixedPriority:
    def test_lowest_priority_number_wins(self):
        arb = FixedPriorityArbiter({0: 5, 1: 1, 2: 3})
        assert arb.select([(0, txn()), (1, txn()), (2, txn())]) == 1

    def test_unlisted_port_loses(self):
        arb = FixedPriorityArbiter({1: 1})
        assert arb.select([(0, txn()), (1, txn())]) == 1
        assert arb.select([(0, txn())]) == 0

    def test_tie_breaks_by_port_index(self):
        arb = FixedPriorityArbiter({0: 2, 1: 2})
        assert arb.select([(1, txn()), (0, txn())]) == 0


class TestQosArbiter:
    def test_highest_qos_wins(self):
        arb = QosArbiter()
        assert arb.select([(0, txn(qos=1)), (1, txn(qos=9))]) == 1

    def test_equal_qos_round_robins(self):
        arb = QosArbiter()
        candidates = [(0, txn(qos=4)), (1, txn(qos=4))]
        winners = [arb.select(candidates) for _ in range(4)]
        assert winners == [0, 1, 0, 1]

    def test_low_qos_starves_while_high_present(self):
        arb = QosArbiter()
        candidates = [(0, txn(qos=0)), (1, txn(qos=15))]
        assert all(arb.select(candidates) == 1 for _ in range(10))


class TestFactory:
    def test_make_known(self):
        assert isinstance(make_arbiter("round_robin"), RoundRobinArbiter)
        assert isinstance(make_arbiter("qos"), QosArbiter)
        assert isinstance(
            make_arbiter("fixed_priority", priorities={0: 1}), FixedPriorityArbiter
        )

    def test_make_unknown_raises(self):
        with pytest.raises(ConfigError):
            make_arbiter("lottery")
