"""Unit tests for MasterPort behaviour (wired into a mini system)."""

import pytest

from repro.errors import ConfigError, ProtocolError
from repro.axi.port import MasterPort, PortConfig
from repro.axi.txn import Transaction
from repro.regulation.base import BandwidthRegulator


def submit(port, sim, n=1, burst_len=4):
    txns = []
    for _ in range(n):
        txn = Transaction(
            master=port.name,
            is_write=False,
            addr=0x1000,
            burst_len=burst_len,
            created=sim.now,
        )
        port.submit(txn)
        txns.append(txn)
    return txns


class TestPortConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            PortConfig(name="p", max_outstanding=0)
        with pytest.raises(ConfigError):
            PortConfig(name="p", qos=16)


class TestLifecycle:
    def test_transaction_completes_with_ordered_timestamps(self, sim, mini):
        port = mini.add_port("m0")
        (txn,) = submit(port, sim)
        sim.run()
        assert txn.completed > txn.mem_start > txn.accepted >= txn.issued
        assert port.stats.counter("completed").value == 1
        assert port.stats.counter("bytes").value == 64
        assert port.idle

    def test_response_callback_invoked(self, sim, mini):
        port = mini.add_port("m0")
        seen = []
        port.on_response = seen.append
        (txn,) = submit(port, sim)
        sim.run()
        assert seen == [txn]

    def test_submit_without_interconnect_rejected(self, sim):
        port = MasterPort(sim, PortConfig(name="orphan"))
        with pytest.raises(ProtocolError):
            submit(port, sim)


class TestOutstandingLimit:
    def test_outstanding_never_exceeds_limit(self, sim, mini):
        port = mini.add_port("m0", max_outstanding=2)
        observed = []
        original_accept = port.accept_head

        def spy(want_write=None):
            txn = original_accept(want_write=want_write)
            observed.append(port.outstanding)
            return txn

        port.accept_head = spy
        submit(port, sim, n=10)
        sim.run()
        assert max(observed) <= 2
        assert port.stats.counter("completed").value == 10

    def test_head_blocked_at_limit(self, sim, mini):
        port = mini.add_port("m0", max_outstanding=1)
        submit(port, sim, n=2)
        # Before any simulation, force the first acceptance manually.
        assert port.head() is not None
        port.accept_head()
        assert port.outstanding == 1
        assert port.head() is None  # limit reached


class _DenyingRegulator(BandwidthRegulator):
    """Denies the first ``deny_count`` admission checks."""

    def __init__(self, deny_count, release_at):
        super().__init__()
        self.deny_count = deny_count
        self.release_at = release_at
        self.checks = 0

    def may_issue(self, txn, now):
        self.checks += 1
        if self.deny_count > 0:
            self.deny_count -= 1
            return False
        return True

    def next_opportunity(self, txn, now):
        return self.release_at


class TestRegulatorInteraction:
    def test_denied_txn_retries_at_next_opportunity(self, sim, mini):
        reg = _DenyingRegulator(deny_count=1, release_at=100)
        port = mini.add_port("m0", regulator=reg)
        (txn,) = submit(port, sim)
        sim.run()
        assert txn.accepted >= 100
        assert port.stats.counter("regulator_denials").value == 1

    def test_charge_called_on_accept(self, sim, mini):
        reg = _DenyingRegulator(deny_count=0, release_at=0)
        port = mini.add_port("m0", regulator=reg)
        submit(port, sim, n=3)
        sim.run()
        assert reg.charged_transactions == 3
        assert reg.charged_bytes == 3 * 64

    def test_double_bind_rejected(self, sim, mini):
        reg = _DenyingRegulator(0, 0)
        mini.add_port("m0", regulator=reg)
        from repro.errors import RegulationError

        with pytest.raises(RegulationError):
            reg.bind_port(mini.ports["m0"])


class _EveryOtherRegulator(BandwidthRegulator):
    """Denies the first admission check of every transaction, allowing
    the retry 10 cycles later -- one ~10-cycle throttle interval per
    transaction."""

    def __init__(self):
        super().__init__()
        self.checks = 0

    def may_issue(self, txn, now):
        self.checks += 1
        return self.checks % 2 == 0

    def next_opportunity(self, txn, now):
        return now + 10


class TestThrottleRing:
    def test_limit_validation(self):
        with pytest.raises(ConfigError):
            PortConfig(name="p", throttle_log_limit=0)
        PortConfig(name="p", throttle_log_limit=None)  # unbounded is fine

    def _make_throttled(self, sim, mini_factory, limit, n):
        port = MasterPort(
            sim,
            PortConfig(name="m0", throttle_log_limit=limit),
            regulator=_EveryOtherRegulator(),
        )
        mini_factory.interconnect.attach_port(port)
        mini_factory.ports["m0"] = port
        submit(port, sim, n=n)
        sim.run()
        return port

    def test_ring_bounds_retained_intervals(self, sim, mini):
        port = self._make_throttled(sim, mini, limit=2, n=5)
        intervals = port.throttle_intervals()
        assert len(intervals) == 2
        assert port.throttle_dropped == 3
        # Dropped intervals still count in the cumulative total.
        retained = sum(end - start for start, end in intervals)
        assert port.throttle_cycles > retained

    def test_unbounded_log_keeps_everything(self, sim, mini):
        port = self._make_throttled(sim, mini, limit=None, n=5)
        intervals = port.throttle_intervals()
        assert len(intervals) == 5
        assert port.throttle_dropped == 0
        assert port.throttle_cycles == sum(
            end - start for start, end in intervals
        )

    def test_throttle_log_property_backcompat(self, sim, mini):
        """Telemetry code iterates ``port.throttle_log`` directly; the
        bounded ring keeps that shape ((start, end) pairs)."""
        port = self._make_throttled(sim, mini, limit=4096, n=3)
        log = list(port.throttle_log)
        assert log == port.throttle_intervals()
        assert all(end > start for start, end in log)

    def test_throttle_cycles_at_includes_open_interval(self, sim, mini):
        reg = _DenyingRegulator(deny_count=10**6, release_at=10**6)
        port = MasterPort(
            sim, PortConfig(name="m0"), regulator=reg
        )
        mini.interconnect.attach_port(port)
        submit(port, sim)
        seen = []
        sim.schedule(
            300,
            lambda: seen.append(
                (port.throttle_cycles, port.throttle_cycles_at(sim.now))
            ),
        )
        sim.run(until=500)
        closed, live = seen[0]
        # Mid-run the permanently-denied interval is still open: the
        # cumulative counter has not been charged yet, but the live
        # accessor includes it up to "now".
        assert closed == 0
        assert live == 300
        # The run finalizer closes it at the end of the run.
        assert port.throttle_intervals() == [(0, 500)]

    def test_last_latency_tracks_most_recent_completion(self, sim, mini):
        port = mini.add_port("m0")
        assert port.last_latency == 0
        (txn,) = submit(port, sim)
        sim.run()
        assert port.last_latency == txn.latency


class TestQosStamping:
    def test_port_qos_stamped_on_default_txns(self, sim, mini):
        port = mini.add_port("m0", qos=7)
        (txn,) = submit(port, sim)
        assert txn.qos == 7

    def test_explicit_qos_preserved(self, sim, mini):
        port = mini.add_port("m0", qos=7)
        txn = Transaction(
            master="m0", is_write=False, addr=0, burst_len=1, qos=3
        )
        port.submit(txn)
        assert txn.qos == 3


class TestBeatObservers:
    def test_observer_sees_completion_bytes(self, sim, mini):
        port = mini.add_port("m0")
        seen = []
        port.beat_observers.append(lambda nbytes, now: seen.append((nbytes, now)))
        (txn,) = submit(port, sim, burst_len=8)
        sim.run()
        assert seen == [(128, txn.completed)]
