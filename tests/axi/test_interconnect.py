"""Unit tests for the interconnect crossbar."""

import pytest

from repro.errors import ConfigError, ProtocolError
from repro.axi.interconnect import Interconnect, InterconnectConfig
from repro.axi.txn import Transaction
from repro.sim.kernel import Simulator
from tests.conftest import MiniSystem


def submit(port, sim, n=1, burst_len=4):
    txns = []
    for _ in range(n):
        txn = Transaction(
            master=port.name, is_write=False, addr=0x1000, burst_len=burst_len,
            created=sim.now,
        )
        port.submit(txn)
        txns.append(txn)
    return txns


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            InterconnectConfig(addr_cycles=0)
        with pytest.raises(ConfigError):
            InterconnectConfig(fwd_latency=-1)


class TestWiring:
    def test_duplicate_port_name_rejected(self, sim, mini):
        mini.add_port("m0")
        with pytest.raises(ConfigError):
            mini.add_port("m0")

    def test_double_memory_attach_rejected(self, sim, mini):
        from repro.dram.controller import DramController

        with pytest.raises(ProtocolError):
            mini.interconnect.attach_memory(DramController(sim))

    def test_arbitrate_without_memory_rejected(self):
        sim = Simulator()
        ic = Interconnect(sim)
        from repro.axi.port import MasterPort, PortConfig

        port = MasterPort(sim, PortConfig(name="m0"))
        ic.attach_port(port)
        submit(port, sim)
        with pytest.raises(ProtocolError):
            sim.run()


class TestArbitration:
    def test_one_acceptance_per_addr_cycle(self, sim):
        mini = MiniSystem(
            sim, interconnect_config=InterconnectConfig(addr_cycles=3)
        )
        port = mini.add_port("m0")
        txns = submit(port, sim, n=4)
        sim.run()
        accepts = sorted(t.accepted for t in txns)
        for earlier, later in zip(accepts, accepts[1:]):
            assert later - earlier >= 3

    def test_fair_share_between_equal_ports(self, sim, mini):
        a = mini.add_port("a", max_outstanding=2)
        b = mini.add_port("b", max_outstanding=2)
        ta = submit(a, sim, n=20)
        tb = submit(b, sim, n=20)
        sim.run()
        # Round-robin: interleaved acceptance; completion counts equal.
        assert a.stats.counter("completed").value == 20
        assert b.stats.counter("completed").value == 20
        # Mean acceptance times should be close (fairness).
        mean_a = sum(t.accepted for t in ta) / 20
        mean_b = sum(t.accepted for t in tb) / 20
        assert abs(mean_a - mean_b) < 100

    def test_accepted_counter(self, sim, mini):
        port = mini.add_port("m0")
        submit(port, sim, n=5)
        sim.run()
        assert mini.interconnect.stats.counter("accepted").value == 5
        assert mini.interconnect.stats.counter("accepted_bytes").value == 5 * 64


class TestLatencies:
    def test_min_latency_includes_pipeline_stages(self, sim):
        cfg = InterconnectConfig(fwd_latency=4, resp_latency=4)
        mini = MiniSystem(sim, interconnect_config=cfg)
        port = mini.add_port("m0")
        (txn,) = submit(port, sim, burst_len=1)
        sim.run()
        # fwd(4) + row miss cmd (28) + 1 beat + resp(4) lower bound.
        assert txn.latency >= 4 + 28 + 1 + 4

    def test_zero_latency_interconnect_works(self, sim):
        cfg = InterconnectConfig(fwd_latency=0, resp_latency=0)
        mini = MiniSystem(sim, interconnect_config=cfg)
        port = mini.add_port("m0")
        (txn,) = submit(port, sim, burst_len=1)
        sim.run()
        assert txn.completed > 0


class TestQosArbitration:
    def test_high_qos_port_has_lower_queueing(self, sim):
        mini = MiniSystem(
            sim, interconnect_config=InterconnectConfig(arbiter="qos")
        )
        hi = mini.add_port("hi", qos=15, max_outstanding=4)
        lo = mini.add_port("lo", qos=0, max_outstanding=4)
        thi = submit(hi, sim, n=30)
        tlo = submit(lo, sim, n=30)
        sim.run()
        mean_hi = sum(t.accepted - t.issued for t in thi) / 30
        mean_lo = sum(t.accepted - t.issued for t in tlo) / 30
        assert mean_hi < mean_lo
