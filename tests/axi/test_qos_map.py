"""Unit tests for the static QoS map helper."""

import pytest

from repro.errors import ConfigError
from repro.axi.port import PortConfig
from repro.axi.qos import QosMap


class TestQosMap:
    def test_set_and_get(self):
        qmap = QosMap()
        qmap.set("dma0", 12)
        assert qmap.get("dma0") == 12

    def test_unlisted_master_defaults_to_zero(self):
        assert QosMap().get("anything") == 0

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigError):
            QosMap({"x": 16})
        qmap = QosMap()
        with pytest.raises(ConfigError):
            qmap.set("x", -1)

    def test_apply_stamps_matching_ports(self):
        qmap = QosMap({"a": 9})
        configs = [PortConfig(name="a"), PortConfig(name="b", qos=2)]
        out = qmap.apply(configs)
        assert out[0].qos == 9
        assert out[1].qos == 2  # untouched
        # Originals are not mutated (PortConfig is frozen anyway).
        assert configs[0].qos == 0

    def test_apply_preserves_other_fields(self):
        qmap = QosMap({"a": 5})
        cfg = PortConfig(name="a", max_outstanding=3)
        out = qmap.apply([cfg])[0]
        assert out.max_outstanding == 3

    def test_critical_first_helper(self):
        qmap = QosMap.critical_first(["cpu0"], ["acc0", "acc1"])
        assert qmap.get("cpu0") == 15
        assert qmap.get("acc0") == 0
        assert qmap.get("acc1") == 0
