"""Unit tests for AXI transactions."""

import pytest

from repro.errors import ProtocolError
from repro.axi.txn import Transaction


def make_txn(**kwargs):
    defaults = dict(
        master="m0", is_write=False, addr=0x1000, burst_len=4, bytes_per_beat=16
    )
    defaults.update(kwargs)
    return Transaction(**defaults)


class TestConstruction:
    def test_derived_sizes(self):
        txn = make_txn(burst_len=4, bytes_per_beat=16)
        assert txn.nbytes == 64
        assert txn.end_addr == 0x1040

    def test_ids_monotonic(self):
        a, b = make_txn(), make_txn()
        assert b.txn_id == a.txn_id + 1

    def test_reset_ids(self):
        make_txn()
        Transaction.reset_ids()
        assert make_txn().txn_id == 0

    @pytest.mark.parametrize("burst_len", [0, 257, -1])
    def test_bad_burst_len(self, burst_len):
        with pytest.raises(ProtocolError):
            make_txn(burst_len=burst_len)

    @pytest.mark.parametrize("bpb", [0, 3, 24])
    def test_bad_beat_width(self, bpb):
        with pytest.raises(ProtocolError):
            make_txn(bytes_per_beat=bpb)

    @pytest.mark.parametrize("qos", [-1, 16])
    def test_bad_qos(self, qos):
        with pytest.raises(ProtocolError):
            make_txn(qos=qos)

    def test_negative_addr(self):
        with pytest.raises(ProtocolError):
            make_txn(addr=-4)


class TestLifecycle:
    def test_full_lifecycle_latencies(self):
        txn = make_txn()
        txn.mark_issued(1)
        txn.mark_accepted(5)
        txn.mark_mem_start(9)
        txn.mark_completed(30)
        assert txn.latency == 30
        assert txn.service_latency == 25

    def test_latency_before_completion_raises(self):
        txn = make_txn()
        with pytest.raises(ProtocolError):
            _ = txn.latency

    def test_service_latency_none_until_done(self):
        txn = make_txn()
        txn.mark_issued(0)
        assert txn.service_latency is None

    def test_double_issue_rejected(self):
        txn = make_txn()
        txn.mark_issued(1)
        with pytest.raises(ProtocolError):
            txn.mark_issued(2)

    def test_accept_before_issue_rejected(self):
        txn = make_txn()
        with pytest.raises(ProtocolError):
            txn.mark_accepted(1)

    def test_mem_start_before_accept_rejected(self):
        txn = make_txn()
        txn.mark_issued(0)
        with pytest.raises(ProtocolError):
            txn.mark_mem_start(1)

    def test_complete_before_mem_rejected(self):
        txn = make_txn()
        txn.mark_issued(0)
        txn.mark_accepted(1)
        with pytest.raises(ProtocolError):
            txn.mark_completed(2)

    def test_double_complete_rejected(self):
        txn = make_txn()
        txn.mark_issued(0)
        txn.mark_accepted(1)
        txn.mark_mem_start(2)
        txn.mark_completed(3)
        with pytest.raises(ProtocolError):
            txn.mark_completed(4)
