"""Unit tests for QoS policies."""

import pytest

from repro.errors import ConfigError
from repro.qos.policy import QosPolicy, critical_plus_besteffort, proportional_shares


class TestQosPolicy:
    def test_total_and_feasibility(self):
        policy = QosPolicy({"a": 0.5, "b": 0.3})
        assert policy.total_share == pytest.approx(0.8)
        assert policy.is_feasible()

    def test_oversubscription_detected(self):
        policy = QosPolicy({"a": 0.7, "b": 0.6})
        assert not policy.is_feasible()
        assert policy.is_feasible(headroom=1.5)

    def test_share_bounds(self):
        with pytest.raises(ConfigError):
            QosPolicy({"a": 0.0})
        with pytest.raises(ConfigError):
            QosPolicy({"a": 1.5})

    def test_share_of_missing_master(self):
        policy = QosPolicy({"a": 0.5})
        assert policy.share_of("a") == 0.5
        with pytest.raises(ConfigError):
            policy.share_of("b")


class TestConstructors:
    def test_proportional(self):
        policy = proportional_shares({"x": 0.2}, name="p")
        assert policy.name == "p"
        assert policy.share_of("x") == 0.2

    def test_critical_plus_besteffort(self):
        policy = critical_plus_besteffort(
            critical=["cpu0"],
            best_effort=["acc0", "acc1", "acc2", "acc3"],
            critical_share=0.3,
            best_effort_total=0.4,
        )
        assert policy.share_of("cpu0") == 0.3
        assert policy.share_of("acc0") == pytest.approx(0.1)
        assert policy.total_share == pytest.approx(0.7)

    def test_empty_best_effort_with_share_rejected(self):
        with pytest.raises(ConfigError):
            critical_plus_besteffort(
                critical=["cpu0"], best_effort=[],
                critical_share=0.3, best_effort_total=0.4,
            )

    def test_critical_only(self):
        policy = critical_plus_besteffort(
            critical=["cpu0"], best_effort=[],
            critical_share=0.5, best_effort_total=0.0,
        )
        assert policy.shares == {"cpu0": 0.5}
