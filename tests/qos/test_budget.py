"""Unit tests for bandwidth budget arithmetic."""

import pytest

from repro.errors import ConfigError
from repro.qos.budget import BandwidthBudget
from repro.sim.config import ClockSpec

CLOCK = ClockSpec(freq_mhz=250.0)


class TestConstructors:
    def test_from_gbps(self):
        budget = BandwidthBudget.from_gbps(4.0, CLOCK)
        assert budget.bytes_per_cycle == pytest.approx(16.0)

    def test_from_fraction(self):
        budget = BandwidthBudget.from_fraction_of_peak(0.25, 16.0)
        assert budget.bytes_per_cycle == 4.0

    def test_from_window(self):
        budget = BandwidthBudget.from_window(1600, 1000)
        assert budget.bytes_per_cycle == 1.6

    @pytest.mark.parametrize("fraction", [0, -0.1, 1.1])
    def test_bad_fraction(self, fraction):
        with pytest.raises(ConfigError):
            BandwidthBudget.from_fraction_of_peak(fraction, 16.0)

    def test_zero_budget_rejected(self):
        with pytest.raises(ConfigError):
            BandwidthBudget(0)


class TestConversions:
    def test_gbps_roundtrip(self):
        budget = BandwidthBudget.from_gbps(1.5, CLOCK)
        assert budget.to_gbps(CLOCK) == pytest.approx(1.5)

    def test_window_bytes(self):
        budget = BandwidthBudget(1.6)
        assert budget.to_window_bytes(1000) == 1600
        assert budget.to_window_bytes(1024) == 1638

    def test_window_bytes_never_zero(self):
        budget = BandwidthBudget(0.001)
        assert budget.to_window_bytes(10) == 1

    def test_fraction_of(self):
        assert BandwidthBudget(4.0).fraction_of(16.0) == 0.25


class TestArithmetic:
    def test_scaled(self):
        assert BandwidthBudget(2.0).scaled(1.5).bytes_per_cycle == 3.0
        with pytest.raises(ConfigError):
            BandwidthBudget(2.0).scaled(0)

    def test_split(self):
        assert BandwidthBudget(8.0).split(4).bytes_per_cycle == 2.0
        with pytest.raises(ConfigError):
            BandwidthBudget(8.0).split(0)
