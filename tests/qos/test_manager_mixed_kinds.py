"""QosManager behaviour with non-budget regulator kinds."""

import pytest

from repro.errors import RegulationError
from repro.qos.budget import BandwidthBudget
from repro.qos.manager import QosManager
from repro.qos.policy import QosPolicy
from repro.regulation.noreg import NoRegulation
from repro.regulation.prem import PremController, PremRegulator
from repro.regulation.tdma import TdmaRegulator, TdmaSchedule
from repro.regulation.tightly_coupled import (
    TightlyCoupledConfig,
    TightlyCoupledRegulator,
)


@pytest.fixture
def mixed_manager(sim):
    mgr = QosManager(sim, peak_bytes_per_cycle=16.0)
    mgr.register(
        "tc",
        TightlyCoupledRegulator(
            sim, TightlyCoupledConfig(window_cycles=1000, budget_bytes=1000)
        ),
    )
    mgr.register("tdma", TdmaRegulator(TdmaSchedule(100, 4), 0))
    mgr.register("prem", PremRegulator(PremController(sim)))
    mgr.register("noreg", NoRegulation())
    return mgr


class TestNonBudgetKinds:
    def test_current_budget_is_none(self, mixed_manager):
        assert mixed_manager.current_budget("tdma") is None
        assert mixed_manager.current_budget("prem") is None
        assert mixed_manager.current_budget("noreg") is None
        assert mixed_manager.current_budget("tc") is not None

    @pytest.mark.parametrize("name", ["tdma", "prem", "noreg"])
    def test_set_budget_rejected_clearly(self, mixed_manager, name):
        with pytest.raises(RegulationError):
            mixed_manager.set_budget(name, BandwidthBudget(1.0))

    def test_policy_naming_non_budget_kind_fails_loudly(self, mixed_manager):
        # A policy that names a TDMA master cannot be silently
        # ignored: the caller gets the per-kind error.
        policy = QosPolicy({"tc": 0.1, "tdma": 0.1})
        with pytest.raises(RegulationError):
            mixed_manager.apply_policy(policy)

    def test_policy_over_budget_kinds_only_succeeds(self, mixed_manager, sim):
        events = mixed_manager.apply_policy(QosPolicy({"tc": 0.25}))
        assert [e.master for e in events] == ["tc"]
        sim.run(until=10)
        assert (
            mixed_manager.current_budget("tc").bytes_per_cycle
            == pytest.approx(4.0)
        )
