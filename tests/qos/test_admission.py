"""Tests for QoS admission control."""

import pytest

from repro.errors import ConfigError
from repro.analysis.bounds import CoRunnerEnvelope
from repro.axi.interconnect import InterconnectConfig
from repro.dram.timing import DramTiming
from repro.qos.admission import AdmissionController
from repro.qos.budget import BandwidthBudget

ENV = CoRunnerEnvelope(max_outstanding=8, burst_beats=16)


def capacity_controller():
    return AdmissionController(
        achievable_peak=13.0, protected_headroom=5.0
    )


def latency_controller(target):
    return AdmissionController(
        achievable_peak=13.0,
        protected_headroom=2.0,
        latency_target=target,
        timing=DramTiming(),
        interconnect=InterconnectConfig(),
    )


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ConfigError):
            AdmissionController(achievable_peak=0, protected_headroom=0)
        with pytest.raises(ConfigError):
            AdmissionController(achievable_peak=10, protected_headroom=10)
        with pytest.raises(ConfigError):
            AdmissionController(
                achievable_peak=10, protected_headroom=1, latency_target=100
            )  # missing timing/interconnect


class TestCapacityGate:
    def test_admit_within_capacity(self):
        ctrl = capacity_controller()
        decision = ctrl.admit("camera", BandwidthBudget(3.0), ENV)
        assert decision.admitted
        assert ctrl.reserved_rate == 3.0
        assert ctrl.available_rate == pytest.approx(5.0)

    def test_reject_when_headroom_violated(self):
        ctrl = capacity_controller()
        ctrl.admit("camera", BandwidthBudget(6.0), ENV)
        decision = ctrl.check("cnn", BandwidthBudget(3.0), ENV)
        assert not decision.admitted
        assert "capacity" in decision.reason
        assert decision.projected_total_rate == pytest.approx(9.0)

    def test_duplicate_rejected(self):
        ctrl = capacity_controller()
        ctrl.admit("camera", BandwidthBudget(1.0), ENV)
        decision = ctrl.admit("camera", BandwidthBudget(1.0), ENV)
        assert not decision.admitted
        assert "already" in decision.reason

    def test_release_frees_capacity(self):
        ctrl = capacity_controller()
        ctrl.admit("camera", BandwidthBudget(6.0), ENV)
        ctrl.release("camera")
        assert ctrl.reserved_rate == 0.0
        assert ctrl.admit("cnn", BandwidthBudget(6.0), ENV).admitted

    def test_release_unknown_rejected(self):
        with pytest.raises(ConfigError):
            capacity_controller().release("ghost")

    def test_check_does_not_commit(self):
        ctrl = capacity_controller()
        assert ctrl.check("camera", BandwidthBudget(1.0), ENV).admitted
        assert ctrl.reservations() == {}


class TestReleaseLifecycle:
    def test_release_then_readmit_same_master(self):
        """A released master can come back: the full admit -> release
        -> re-admit cycle leaves no residue."""
        ctrl = capacity_controller()
        first = ctrl.admit("camera", BandwidthBudget(6.0), ENV)
        assert first.admitted
        ctrl.release("camera")
        assert ctrl.reserved_rate == 0.0
        assert ctrl.available_rate == pytest.approx(8.0)
        again = ctrl.admit("camera", BandwidthBudget(2.0), ENV)
        assert again.admitted
        assert ctrl.reserved_rate == pytest.approx(2.0)
        reservations = ctrl.reservations()
        assert set(reservations) == {"camera"}
        assert reservations["camera"].rate.bytes_per_cycle == pytest.approx(2.0)

    def test_double_release_rejected(self):
        ctrl = capacity_controller()
        ctrl.admit("camera", BandwidthBudget(1.0), ENV)
        ctrl.release("camera")
        with pytest.raises(ConfigError):
            ctrl.release("camera")

    def test_release_one_of_many_keeps_the_rest(self):
        ctrl = capacity_controller()
        ctrl.admit("camera", BandwidthBudget(3.0), ENV)
        ctrl.admit("cnn", BandwidthBudget(4.0), ENV)
        ctrl.release("camera")
        assert set(ctrl.reservations()) == {"cnn"}
        assert ctrl.available_rate == pytest.approx(4.0)

    def test_release_restores_latency_headroom(self):
        """After releasing a co-runner its envelope no longer counts
        against the next admission's latency bound."""
        ctrl = latency_controller(target=800)
        light = CoRunnerEnvelope(max_outstanding=2, burst_beats=4)
        assert ctrl.admit("a", BandwidthBudget(1.0), light).admitted
        rejected = ctrl.check("b", BandwidthBudget(1.0), light)
        ctrl.release("a")
        after = ctrl.admit("b", BandwidthBudget(1.0), light)
        assert after.admitted
        assert (
            after.projected_latency_bound
            < rejected.projected_latency_bound
        )


class TestLatencyGate:
    def test_reject_when_bound_exceeds_target(self):
        # A single deep-queued co-runner already costs > 600 cycles.
        ctrl = latency_controller(target=300)
        decision = ctrl.admit("hog", BandwidthBudget(1.0), ENV)
        assert not decision.admitted
        assert "latency" in decision.reason
        assert decision.projected_latency_bound > 300

    def test_admit_with_loose_target(self):
        ctrl = latency_controller(target=100_000)
        decision = ctrl.admit("hog", BandwidthBudget(1.0), ENV)
        assert decision.admitted
        assert decision.projected_latency_bound is not None

    def test_bound_grows_with_each_admission(self):
        ctrl = latency_controller(target=100_000)
        first = ctrl.admit("a", BandwidthBudget(1.0), ENV)
        second = ctrl.admit("b", BandwidthBudget(1.0), ENV)
        assert (
            second.projected_latency_bound > first.projected_latency_bound
        )

    def test_shallow_envelope_admits_where_deep_fails(self):
        deep = latency_controller(target=800)
        assert not deep.admit("hog", BandwidthBudget(1.0), ENV).admitted
        shallow = latency_controller(target=800)
        light_env = CoRunnerEnvelope(max_outstanding=2, burst_beats=4)
        assert shallow.admit("sensor", BandwidthBudget(1.0), light_env).admitted
