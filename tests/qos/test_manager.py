"""Unit tests for the run-time QoS manager."""

import pytest

from repro.errors import ConfigError
from repro.qos.budget import BandwidthBudget
from repro.qos.manager import QosManager
from repro.qos.policy import QosPolicy
from repro.regulation.memguard import MemGuardConfig, MemGuardRegulator
from repro.regulation.noreg import NoRegulation
from repro.regulation.tightly_coupled import (
    TightlyCoupledConfig,
    TightlyCoupledRegulator,
)


def tc_regulator(sim, window=1000, budget=1000, latency=4):
    return TightlyCoupledRegulator(
        sim,
        TightlyCoupledConfig(
            window_cycles=window, budget_bytes=budget, reconfig_latency=latency
        ),
    )


class TestRegistration:
    def test_register_and_lookup(self, sim):
        mgr = QosManager(sim, peak_bytes_per_cycle=16.0)
        reg = tc_regulator(sim)
        mgr.register("acc0", reg)
        assert mgr.regulator("acc0") is reg
        assert mgr.masters == ["acc0"]

    def test_duplicate_rejected(self, sim):
        mgr = QosManager(sim, 16.0)
        mgr.register("acc0", tc_regulator(sim))
        with pytest.raises(ConfigError):
            mgr.register("acc0", tc_regulator(sim))

    def test_unknown_lookup_rejected(self, sim):
        mgr = QosManager(sim, 16.0)
        with pytest.raises(ConfigError):
            mgr.regulator("ghost")

    def test_bad_peak_rejected(self, sim):
        with pytest.raises(ConfigError):
            QosManager(sim, 0.0)


class TestBudgetProgramming:
    def test_set_budget_converts_to_window_bytes(self, sim):
        mgr = QosManager(sim, 16.0)
        reg = tc_regulator(sim, window=1000, latency=4)
        mgr.register("acc0", reg)
        event = mgr.set_budget("acc0", BandwidthBudget(1.6))
        assert event.budget_bytes == 1600
        assert event.latency == 4
        sim.run(until=10)
        assert reg.budget_bytes == 1600

    def test_memguard_uses_period_window(self, sim):
        mgr = QosManager(sim, 16.0)
        reg = MemGuardRegulator(
            sim, MemGuardConfig(period_cycles=10_000, budget_bytes=1)
        )
        mgr.register("acc0", reg)
        event = mgr.set_budget("acc0", BandwidthBudget(0.5))
        assert event.budget_bytes == 5_000
        assert event.effective_at == 10_000  # next period

    def test_log_accumulates(self, sim):
        mgr = QosManager(sim, 16.0)
        mgr.register("acc0", tc_regulator(sim))
        mgr.set_budget("acc0", BandwidthBudget(1.0))
        mgr.set_budget("acc0", BandwidthBudget(2.0))
        assert len(mgr.log) == 2

    def test_current_budget(self, sim):
        mgr = QosManager(sim, 16.0)
        mgr.register("acc0", tc_regulator(sim, window=1000, budget=800))
        budget = mgr.current_budget("acc0")
        assert budget.bytes_per_cycle == pytest.approx(0.8)

    def test_current_budget_none_for_passthrough(self, sim):
        mgr = QosManager(sim, 16.0)
        mgr.register("acc0", NoRegulation())
        assert mgr.current_budget("acc0") is None


class TestPolicyApplication:
    def test_apply_policy_programs_named_masters(self, sim):
        mgr = QosManager(sim, 16.0)
        reg_a = tc_regulator(sim, window=1000)
        reg_b = tc_regulator(sim, window=1000)
        mgr.register("acc0", reg_a)
        mgr.register("acc1", reg_b)
        events = mgr.apply_policy(QosPolicy({"acc0": 0.25, "acc1": 0.125}))
        assert len(events) == 2
        sim.run(until=10)
        assert reg_a.budget_bytes == 4000   # 0.25 * 16 * 1000
        assert reg_b.budget_bytes == 2000

    def test_policy_skips_unnamed_masters(self, sim):
        mgr = QosManager(sim, 16.0)
        mgr.register("acc0", tc_regulator(sim))
        mgr.register("acc1", tc_regulator(sim))
        events = mgr.apply_policy(QosPolicy({"acc0": 0.25}))
        assert [e.master for e in events] == ["acc0"]

    def test_oversubscribed_policy_rejected(self, sim):
        mgr = QosManager(sim, 16.0)
        mgr.register("acc0", tc_regulator(sim))
        with pytest.raises(ConfigError):
            mgr.apply_policy(QosPolicy({"acc0": 0.9, "other": 0.9}))
