"""Differential tests: the calendar queue against the reference heap.

The two scheduler backends are contractually bit-identical: for any
sequence of queue operations they must dispatch the same events in the
same order, and any experiment must produce byte-identical result
tables whichever backend runs it.  These tests drive both backends
with the same randomized programs and full (scaled-down) experiments
and compare outputs exactly -- no tolerances.
"""

import random

import pytest

from repro.sim.calendar import _BUCKETS, CalendarQueue
from repro.sim.event import EventQueue
from repro.sim.kernel import Simulator

from benchmarks.common import loaded_config, tc_spec
from repro.soc.experiment import run_experiment


def _random_program(seed, steps):
    """A backend-agnostic op script exercising the full queue surface.

    Times mix same-cycle bursts, near-future delays, far-overflow jumps
    and (via pop-then-push-low patterns) rewinds; ops mix pushes,
    daemon pushes, cancels of arbitrary live handles, pops and peeks.
    """
    rng = random.Random(seed)
    program = []
    for _ in range(steps):
        r = rng.random()
        if r < 0.55:
            kind = "push_daemon" if rng.random() < 0.15 else "push"
            delay = rng.choice(
                (0, 0, 1, 2, 3, rng.randrange(64), rng.randrange(3 * _BUCKETS))
            )
            program.append((kind, delay, rng.randrange(8)))
        elif r < 0.70:
            program.append(("cancel", rng.randrange(1 << 30), 0))
        elif r < 0.95:
            program.append(("pop", 0, 0))
        else:
            program.append(("peek", 0, 0))
    return program


def _execute(queue, program):
    """Run a program; return the dispatch trace and final state."""
    trace = []
    handles = []
    base = 0  # advances with dispatched times, so pushes stay relative
    for kind, arg, priority in program:
        if kind in ("push", "push_daemon"):
            ev = queue.push(
                base + arg, priority, lambda: None, daemon=kind == "push_daemon"
            )
            handles.append(ev)
        elif kind == "cancel":
            if handles:
                handles[arg % len(handles)].cancel()
        elif kind == "pop":
            if queue.peek_time() is not None:
                ev = queue.pop()
                trace.append((ev.time, ev.priority, ev.seq, ev.daemon))
                base = ev.time
        elif kind == "peek":
            trace.append(("peek", queue.peek_time()))
    # Drain what's left so tail-end ordering is compared too.
    while queue.peek_time() is not None:
        ev = queue.pop()
        trace.append((ev.time, ev.priority, ev.seq, ev.daemon))
    trace.append(("live", queue.live_foreground))
    return trace


@pytest.mark.parametrize("seed", range(12))
def test_randomized_programs_dispatch_identically(seed):
    program = _random_program(seed, steps=400)
    heap_trace = _execute(EventQueue(), program)
    calendar_trace = _execute(CalendarQueue(), program)
    assert calendar_trace == heap_trace


@pytest.mark.parametrize("seed", range(6))
def test_below_cursor_pushes_dispatch_identically(seed):
    """Rewind-heavy program: pops advance the cursor, then pushes land
    below it (legal for direct queue users)."""
    rng = random.Random(1000 + seed)
    heap, cal = EventQueue(), CalendarQueue()
    traces = [[], []]
    for queue, trace in ((heap, traces[0]), (cal, traces[1])):
        rng_q = random.Random(2000 + seed)  # same stream per backend
        queue.push(5 * _BUCKETS, 0, lambda: None)
        assert queue.peek_time() == 5 * _BUCKETS
        for _ in range(200):
            t = rng_q.randrange(6 * _BUCKETS)
            queue.push(t, rng_q.randrange(4), lambda: None)
            if rng_q.random() < 0.5 and queue.live_foreground:
                ev = queue.pop()
                trace.append((ev.time, ev.priority, ev.seq))
        while queue.live_foreground:
            ev = queue.pop()
            trace.append((ev.time, ev.priority, ev.seq))
    assert traces[0] == traces[1]


def test_simulator_runs_identically_across_backends():
    """A kernel-level workload (cascading callbacks, cancels, daemons,
    bounded runs) observed through fired-event journals."""

    def drive(scheduler):
        sim = Simulator(scheduler=scheduler)
        journal = []
        rng = random.Random(77)
        retained = []

        def work(tag):
            journal.append((sim.now, tag))
            if rng.random() < 0.6:
                sim.schedule(rng.randrange(4), lambda: work(tag + 1))
            if rng.random() < 0.3:
                retained.append(
                    sim.schedule(rng.randrange(90), lambda: work(-tag))
                )
            if retained and rng.random() < 0.4:
                retained.pop(rng.randrange(len(retained))).cancel()

        sim.schedule(0, lambda: work(1), daemon=False)
        sim.schedule(3, lambda: journal.append((sim.now, "tick")), daemon=True)
        sim.run(until=40)
        journal.append(("now", sim.now))
        sim.schedule(2, lambda: work(1000))
        sim.run()
        journal.append(("end", sim.now))
        return journal

    assert drive("calendar") == drive("heap")


@pytest.mark.parametrize(
    "share,window", [(0.10, 256), (0.20, 2048)]
)
def test_experiment_tables_byte_identical(share, window, monkeypatch):
    """Reduced-scale E2/E3-style runs: the full regulated-platform
    summary (per-master bytes, latencies, violation counts -- the
    numbers the paper's tables are built from) must serialize to the
    exact same JSON under either backend."""

    def table(scheduler):
        monkeypatch.setenv("REPRO_SCHED", scheduler)
        config = loaded_config(
            num_accels=2,
            cpu_work=400,
            accel_regulator=tc_spec(share, window_cycles=window),
        )
        result = run_experiment(config)
        return result.summary().to_json()

    assert table("calendar") == table("heap")
