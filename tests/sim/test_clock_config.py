"""Unit tests for ClockSpec unit conversions."""

import pytest

from repro.errors import ConfigError
from repro.sim.config import ClockSpec


class TestClockSpec:
    def test_period(self):
        clock = ClockSpec(freq_mhz=250.0)
        assert clock.period_ns == pytest.approx(4.0)

    def test_cycles_from_ns(self):
        clock = ClockSpec(freq_mhz=250.0)
        assert clock.cycles_from_ns(4.0) == 1
        assert clock.cycles_from_ns(1000.0) == 250
        assert clock.cycles_from_ns(0.0) == 0

    def test_cycles_from_ns_rounds_to_at_least_one(self):
        clock = ClockSpec(freq_mhz=250.0)
        assert clock.cycles_from_ns(0.1) == 1

    def test_cycles_from_us(self):
        clock = ClockSpec(freq_mhz=250.0)
        assert clock.cycles_from_us(1.0) == 250
        assert clock.cycles_from_us(1000.0) == 250_000  # 1 ms OS tick

    def test_bandwidth_roundtrip(self):
        clock = ClockSpec(freq_mhz=250.0)
        bpc = clock.bytes_per_cycle_from_gbps(4.0)
        assert bpc == pytest.approx(16.0)
        assert clock.gbps_from_bytes_per_cycle(bpc) == pytest.approx(4.0)

    def test_gbps_from_bytes_interval(self):
        clock = ClockSpec(freq_mhz=250.0)
        # 16 B/cycle sustained for 1000 cycles = 4 GB/s.
        assert clock.gbps_from_bytes(16_000, 1000) == pytest.approx(4.0)

    def test_validation(self):
        with pytest.raises(ConfigError):
            ClockSpec(freq_mhz=0)
        clock = ClockSpec()
        with pytest.raises(ConfigError):
            clock.cycles_from_ns(-1)
        with pytest.raises(ConfigError):
            clock.bytes_per_cycle_from_gbps(-1)
        with pytest.raises(ConfigError):
            clock.gbps_from_bytes(10, 0)
