"""Unit tests for the event queue primitives."""

import pytest

from repro.errors import SimulationError
from repro.sim.event import Event, EventQueue


class TestEventOrdering:
    def test_orders_by_time(self):
        q = EventQueue()
        fired = []
        q.push(10, 0, lambda: fired.append("b"))
        q.push(5, 0, lambda: fired.append("a"))
        q.pop().callback()
        q.pop().callback()
        assert fired == ["a", "b"]

    def test_same_time_orders_by_priority(self):
        q = EventQueue()
        fired = []
        q.push(5, 7, lambda: fired.append("low"))
        q.push(5, 1, lambda: fired.append("high"))
        q.pop().callback()
        q.pop().callback()
        assert fired == ["high", "low"]

    def test_same_time_same_priority_fifo(self):
        q = EventQueue()
        fired = []
        for i in range(5):
            q.push(5, 0, lambda i=i: fired.append(i))
        while len(q):
            q.pop().callback()
        assert fired == [0, 1, 2, 3, 4]

    def test_event_lt_comparison(self):
        a = Event(1, 0, 0, lambda: None)
        b = Event(1, 0, 1, lambda: None)
        assert a < b
        assert not (b < a)


class TestCancellation:
    def test_cancelled_event_is_skipped(self):
        q = EventQueue()
        fired = []
        ev = q.push(1, 0, lambda: fired.append("x"))
        q.push(2, 0, lambda: fired.append("y"))
        ev.cancel()
        assert q.pop().callback() is None or True
        assert fired == ["y"]

    def test_pop_empty_raises(self):
        q = EventQueue()
        with pytest.raises(SimulationError):
            q.pop()

    def test_pop_all_cancelled_raises(self):
        q = EventQueue()
        q.push(1, 0, lambda: None).cancel()
        with pytest.raises(SimulationError):
            q.pop()

    def test_peek_skips_cancelled(self):
        q = EventQueue()
        q.push(1, 0, lambda: None).cancel()
        q.push(9, 0, lambda: None)
        assert q.peek_time() == 9

    def test_peek_empty_returns_none(self):
        assert EventQueue().peek_time() is None

    def test_clear(self):
        q = EventQueue()
        q.push(1, 0, lambda: None)
        q.clear()
        assert q.peek_time() is None
        assert len(q) == 0

    def test_cancel_after_clear_is_inert(self):
        q = EventQueue()
        ev = q.push(1, 0, lambda: None)
        q.clear()
        ev.cancel()
        assert q.live_foreground == 0


class TestLiveForegroundAccounting:
    def test_cancel_decrements_immediately(self):
        q = EventQueue()
        ev = q.push(1, 0, lambda: None)
        q.push(2, 0, lambda: None)
        assert q.live_foreground == 2
        ev.cancel()
        # Exact accounting: the shell is still in the heap but no
        # longer counts as live work.
        assert q.live_foreground == 1
        assert len(q) == 2

    def test_double_cancel_counts_once(self):
        q = EventQueue()
        ev = q.push(1, 0, lambda: None)
        ev.cancel()
        ev.cancel()
        assert q.live_foreground == 0

    def test_cancel_after_pop_does_not_decrement(self):
        q = EventQueue()
        ev = q.push(1, 0, lambda: None)
        q.push(2, 0, lambda: None)
        popped = q.pop()
        assert popped is ev
        assert q.live_foreground == 1
        ev.cancel()  # already dispatched; must not touch the counter
        assert q.live_foreground == 1

    def test_daemon_cancel_leaves_foreground_alone(self):
        q = EventQueue()
        ev = q.push(1, 0, lambda: None, daemon=True)
        q.push(2, 0, lambda: None)
        assert q.live_foreground == 1
        ev.cancel()
        assert q.live_foreground == 1

    def test_popping_cancelled_shells_does_not_double_count(self):
        q = EventQueue()
        events = [q.push(t, 0, lambda: None) for t in range(5)]
        for ev in events[:4]:
            ev.cancel()
        assert q.live_foreground == 1
        assert q.pop() is events[4]
        assert q.live_foreground == 0


class TestHeapCompaction:
    def test_majority_cancelled_heap_compacts(self):
        q = EventQueue()
        events = [q.push(t, 0, lambda: None) for t in range(200)]
        for ev in events[:150]:
            ev.cancel()
        # Shells were the majority at some point, so a compaction ran
        # and the heap shrank under the number of pushes instead of
        # retaining every shell; survivors stay in the minority.
        assert len(q) < 200
        assert q.cancelled_pending * 2 <= len(q)
        assert q.live_foreground == 50

    def test_compaction_preserves_order(self):
        q = EventQueue()
        fired = []
        events = []
        for t in range(100):
            events.append(q.push(t, 0, lambda t=t: fired.append(t)))
        for ev in events:
            if ev.time % 2:
                ev.cancel()
        while q.live_foreground:
            q.pop().callback()
        assert fired == list(range(0, 100, 2))

    def test_small_heaps_stay_lazy(self):
        q = EventQueue()
        events = [q.push(t, 0, lambda: None) for t in range(10)]
        for ev in events[:9]:
            ev.cancel()
        # Below the compaction floor nothing is rebuilt eagerly.
        assert len(q) == 10
        assert q.cancelled_pending == 9


class TestPopIfAt:
    def test_pops_only_matching_time(self):
        q = EventQueue()
        q.push(5, 0, lambda: None)
        q.push(7, 0, lambda: None)
        assert q.pop_if_at(4) is None
        ev = q.pop_if_at(5)
        assert ev is not None and ev.time == 5
        assert q.pop_if_at(5) is None
        assert q.peek_time() == 7

    def test_skips_cancelled_shells(self):
        q = EventQueue()
        q.push(5, 0, lambda: None).cancel()
        q.push(5, 1, lambda: None)
        ev = q.pop_if_at(5)
        assert ev is not None and ev.priority == 1

    def test_empty_queue_returns_none(self):
        assert EventQueue().pop_if_at(0) is None
