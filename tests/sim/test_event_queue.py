"""Unit tests for the event-queue protocol, run against both backends.

Every test is parametrized over the two scheduler implementations --
the reference binary heap (:class:`EventQueue`) and the production
calendar queue (:class:`CalendarQueue`) -- because the kernel treats
them as interchangeable: any behavioural split between them is a bug
regardless of which side is "right".
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim.calendar import CalendarQueue
from repro.sim.event import _COMPACT_MIN_HEAP, Event, EventQueue

BACKENDS = {"heap": EventQueue, "calendar": CalendarQueue}


@pytest.fixture(params=sorted(BACKENDS), name="make_queue")
def _make_queue(request):
    return BACKENDS[request.param]


class TestEventOrdering:
    def test_orders_by_time(self, make_queue):
        q = make_queue()
        fired = []
        q.push(10, 0, lambda: fired.append("b"))
        q.push(5, 0, lambda: fired.append("a"))
        q.pop().callback()
        q.pop().callback()
        assert fired == ["a", "b"]

    def test_same_time_orders_by_priority(self, make_queue):
        q = make_queue()
        fired = []
        q.push(5, 7, lambda: fired.append("low"))
        q.push(5, 1, lambda: fired.append("high"))
        q.pop().callback()
        q.pop().callback()
        assert fired == ["high", "low"]

    def test_same_time_same_priority_fifo(self, make_queue):
        q = make_queue()
        fired = []
        for i in range(5):
            q.push(5, 0, lambda i=i: fired.append(i))
        while len(q):
            q.pop().callback()
        assert fired == [0, 1, 2, 3, 4]

    def test_event_lt_comparison(self):
        a = Event(1, 0, 0, lambda: None)
        b = Event(1, 0, 1, lambda: None)
        assert a < b
        assert not (b < a)


class TestCancellation:
    def test_cancelled_event_is_skipped(self, make_queue):
        q = make_queue()
        fired = []
        ev = q.push(1, 0, lambda: fired.append("x"))
        q.push(2, 0, lambda: fired.append("y"))
        ev.cancel()
        q.pop().callback()
        assert fired == ["y"]

    def test_pop_empty_raises(self, make_queue):
        q = make_queue()
        with pytest.raises(SimulationError):
            q.pop()

    def test_pop_all_cancelled_raises(self, make_queue):
        q = make_queue()
        q.push(1, 0, lambda: None).cancel()
        with pytest.raises(SimulationError):
            q.pop()

    def test_peek_skips_cancelled(self, make_queue):
        q = make_queue()
        q.push(1, 0, lambda: None).cancel()
        q.push(9, 0, lambda: None)
        assert q.peek_time() == 9

    def test_peek_empty_returns_none(self, make_queue):
        assert make_queue().peek_time() is None

    def test_clear(self, make_queue):
        q = make_queue()
        q.push(1, 0, lambda: None)
        q.clear()
        assert q.peek_time() is None
        assert len(q) == 0

    def test_cancel_after_clear_is_inert(self, make_queue):
        q = make_queue()
        ev = q.push(1, 0, lambda: None)
        q.clear()
        ev.cancel()
        assert q.live_foreground == 0


class TestLiveForegroundAccounting:
    def test_cancel_decrements_immediately(self, make_queue):
        q = make_queue()
        ev = q.push(1, 0, lambda: None)
        q.push(2, 0, lambda: None)
        assert q.live_foreground == 2
        ev.cancel()
        # Exact accounting: the shell is still queued but no longer
        # counts as live work.
        assert q.live_foreground == 1
        assert len(q) == 2

    def test_double_cancel_counts_once(self, make_queue):
        q = make_queue()
        ev = q.push(1, 0, lambda: None)
        ev.cancel()
        ev.cancel()
        assert q.live_foreground == 0

    def test_cancel_after_pop_does_not_decrement(self, make_queue):
        q = make_queue()
        ev = q.push(1, 0, lambda: None)
        q.push(2, 0, lambda: None)
        popped = q.pop()
        assert popped is ev
        assert q.live_foreground == 1
        ev.cancel()  # already dispatched; must not touch the counter
        assert q.live_foreground == 1

    def test_daemon_cancel_leaves_foreground_alone(self, make_queue):
        q = make_queue()
        ev = q.push(1, 0, lambda: None, daemon=True)
        q.push(2, 0, lambda: None)
        assert q.live_foreground == 1
        ev.cancel()
        assert q.live_foreground == 1

    def test_popping_cancelled_shells_does_not_double_count(self, make_queue):
        q = make_queue()
        events = [q.push(t, 0, lambda: None) for t in range(5)]
        for ev in events[:4]:
            ev.cancel()
        assert q.live_foreground == 1
        assert q.pop() is events[4]
        assert q.live_foreground == 0


class TestCompaction:
    def test_majority_cancelled_queue_compacts(self, make_queue):
        q = make_queue()
        events = [q.push(t, 0, lambda: None) for t in range(200)]
        for ev in events[:150]:
            ev.cancel()
        # Shells were the majority at some point, so a compaction ran
        # and the queue shrank under the number of pushes instead of
        # retaining every shell; survivors stay in the minority.
        assert len(q) < 200
        assert q.cancelled_pending * 2 <= len(q)
        assert q.live_foreground == 50

    def test_compaction_preserves_order(self, make_queue):
        q = make_queue()
        fired = []
        events = []
        for t in range(100):
            events.append(q.push(t, 0, lambda t=t: fired.append(t)))
        for ev in events:
            if ev.time % 2:
                ev.cancel()
        while q.live_foreground:
            q.pop().callback()
        assert fired == list(range(0, 100, 2))

    def test_small_queues_stay_lazy(self, make_queue):
        q = make_queue()
        events = [q.push(t, 0, lambda: None) for t in range(10)]
        for ev in events[:9]:
            ev.cancel()
        # Below the compaction floor nothing is rebuilt eagerly.
        assert len(q) == 10
        assert q.cancelled_pending == 9

    def test_cancel_heavy_at_compaction_floor(self, make_queue):
        # Exactly _COMPACT_MIN_HEAP resident events, all but one
        # cancelled: the threshold comparison sits right on its
        # boundary, where an off-by-one would either compact a queue
        # meant to stay lazy or let shells accumulate unboundedly.
        q = make_queue()
        events = [
            q.push(t, 0, lambda: None) for t in range(_COMPACT_MIN_HEAP)
        ]
        for ev in events[:-1]:
            ev.cancel()
        assert q.live_foreground == 1
        # The majority threshold was crossed while the queue sat at the
        # floor, so a compaction ran and shrank it; once below the
        # floor, remaining shells are legitimately retained lazily.
        assert len(q) < _COMPACT_MIN_HEAP
        assert q.pop() is events[-1]
        with pytest.raises(SimulationError):
            q.pop()

    def test_one_below_compaction_floor_stays_lazy(self, make_queue):
        q = make_queue()
        events = [
            q.push(t, 0, lambda: None) for t in range(_COMPACT_MIN_HEAP - 1)
        ]
        for ev in events:
            ev.cancel()
        # One short of the floor: every shell is retained lazily.
        assert len(q) == _COMPACT_MIN_HEAP - 1
        assert q.cancelled_pending == _COMPACT_MIN_HEAP - 1

    def test_cancel_after_dispatch_never_skews_compaction(self, make_queue):
        # A late cancel() on a dispatched event must neither decrement
        # live_foreground nor count toward the pending-shell total that
        # drives compaction.
        q = make_queue()
        dispatched = []
        for t in range(_COMPACT_MIN_HEAP):
            q.push(t, 0, lambda: None)
        for _ in range(_COMPACT_MIN_HEAP // 2):
            dispatched.append(q.pop())
        before = q.cancelled_pending
        for ev in dispatched:
            ev.cancel()
        assert q.cancelled_pending == before
        assert q.live_foreground == _COMPACT_MIN_HEAP - len(dispatched)
        remaining = 0
        while q.live_foreground:
            q.pop()
            remaining += 1
        assert remaining == _COMPACT_MIN_HEAP - len(dispatched)


class TestPopIfAt:
    def test_pops_only_matching_time(self, make_queue):
        q = make_queue()
        q.push(5, 0, lambda: None)
        q.push(7, 0, lambda: None)
        assert q.pop_if_at(4) is None
        ev = q.pop_if_at(5)
        assert ev is not None and ev.time == 5
        assert q.pop_if_at(5) is None
        assert q.peek_time() == 7

    def test_skips_cancelled_shells(self, make_queue):
        q = make_queue()
        q.push(5, 0, lambda: None).cancel()
        q.push(5, 1, lambda: None)
        ev = q.pop_if_at(5)
        assert ev is not None and ev.priority == 1

    def test_empty_queue_returns_none(self, make_queue):
        assert make_queue().pop_if_at(0) is None


#: One step of the property-test workload: (opcode, operand) pairs
#: drawn small so sequences explore cancel/pop interleavings densely.
_OPS = st.lists(
    st.tuples(
        st.sampled_from(["push", "push_daemon", "cancel", "pop", "peek"]),
        st.integers(min_value=0, max_value=600),
    ),
    max_size=120,
)


class TestLiveForegroundProperty:
    @settings(max_examples=60, deadline=None)
    @given(ops=_OPS)
    @pytest.mark.parametrize("backend", sorted(BACKENDS))
    def test_live_foreground_never_negative(self, backend, ops):
        """``live_foreground`` tracks the model count and never dips
        below zero, however pushes, cancels (including double cancels
        and cancels of dispatched events) and pops interleave."""
        q = BACKENDS[backend]()
        handles = []  # every handle ever issued, dispatched or not
        model_live = 0
        for op, arg in ops:
            if op == "push":
                handles.append(q.push(arg, arg % 5, lambda: None))
                model_live += 1
            elif op == "push_daemon":
                handles.append(
                    q.push(arg, arg % 5, lambda: None, daemon=True)
                )
            elif op == "cancel" and handles:
                ev = handles[arg % len(handles)]
                live_before = (
                    ev._queue is q and not ev.cancelled and not ev.daemon
                )
                ev.cancel()
                if live_before:
                    model_live -= 1
            elif op == "pop":
                if q.live_foreground:
                    ev = q.pop()
                    assert not ev.cancelled
                    if not ev.daemon:
                        model_live -= 1
                else:
                    assert q.live_foreground == 0
            elif op == "peek":
                q.peek_time()
            assert q.live_foreground == model_live
            assert q.live_foreground >= 0
