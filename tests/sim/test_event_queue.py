"""Unit tests for the event queue primitives."""

import pytest

from repro.errors import SimulationError
from repro.sim.event import Event, EventQueue


class TestEventOrdering:
    def test_orders_by_time(self):
        q = EventQueue()
        fired = []
        q.push(10, 0, lambda: fired.append("b"))
        q.push(5, 0, lambda: fired.append("a"))
        q.pop().callback()
        q.pop().callback()
        assert fired == ["a", "b"]

    def test_same_time_orders_by_priority(self):
        q = EventQueue()
        fired = []
        q.push(5, 7, lambda: fired.append("low"))
        q.push(5, 1, lambda: fired.append("high"))
        q.pop().callback()
        q.pop().callback()
        assert fired == ["high", "low"]

    def test_same_time_same_priority_fifo(self):
        q = EventQueue()
        fired = []
        for i in range(5):
            q.push(5, 0, lambda i=i: fired.append(i))
        while len(q):
            q.pop().callback()
        assert fired == [0, 1, 2, 3, 4]

    def test_event_lt_comparison(self):
        a = Event(1, 0, 0, lambda: None)
        b = Event(1, 0, 1, lambda: None)
        assert a < b
        assert not (b < a)


class TestCancellation:
    def test_cancelled_event_is_skipped(self):
        q = EventQueue()
        fired = []
        ev = q.push(1, 0, lambda: fired.append("x"))
        q.push(2, 0, lambda: fired.append("y"))
        ev.cancel()
        assert q.pop().callback() is None or True
        assert fired == ["y"]

    def test_pop_empty_raises(self):
        q = EventQueue()
        with pytest.raises(SimulationError):
            q.pop()

    def test_pop_all_cancelled_raises(self):
        q = EventQueue()
        q.push(1, 0, lambda: None).cancel()
        with pytest.raises(SimulationError):
            q.pop()

    def test_peek_skips_cancelled(self):
        q = EventQueue()
        q.push(1, 0, lambda: None).cancel()
        q.push(9, 0, lambda: None)
        assert q.peek_time() == 9

    def test_peek_empty_returns_none(self):
        assert EventQueue().peek_time() is None

    def test_clear(self):
        q = EventQueue()
        q.push(1, 0, lambda: None)
        q.clear()
        assert q.peek_time() is None
        assert len(q) == 0
