"""Differential tests for the steady-state fast-forward engine.

The engine's contract is the same as the scheduler/dispatch knobs':
byte-identical result tables whether or not it runs.  These tests
drive regulation-bound open-loop scenarios (the engine's target
shape) and irregular scenarios (where it must decline) across both
scheduler backends and both dispatch modes, and compare full run
summaries exactly -- no tolerances.  A separate engagement test
guards against the detector declining everything, which would make
the identity assertions vacuous.
"""

from dataclasses import replace

import pytest

from repro.sim.kernel import Simulator, resolve_fastforward

from benchmarks.common import memguard_spec, tc_spec
from repro.soc.experiment import PlatformResult
from repro.soc.platform import MasterSpec, Platform, PlatformConfig

#: Short but multi-window horizon: dozens of refill boundaries, a few
#: DRAM refresh daemon ticks, thousands of arrivals.
HORIZON = 40_000

REGION_BASE = 0x1000_0000
REGION_BYTES = 4 << 20


def steady_config(num_streams=1, regulator=None, seed=3):
    """Open-loop stream(s) under tight regulation: the steady
    regulation-bound shape the engine macro-steps."""
    if regulator is None:
        regulator = tc_spec(0.01, window_cycles=1024)
    masters = tuple(
        MasterSpec(
            name=f"olp{i}",
            workload="open_loop_stream",
            region_base=REGION_BASE + i * REGION_BYTES,
            region_extent=REGION_BYTES,
            regulator=regulator,
        )
        for i in range(num_streams)
    )
    return PlatformConfig(masters=masters, seed=seed)


def run_table(config, monkeypatch, scheduler, batch, fastforward,
              horizon=HORIZON):
    """One full run -> (summary json, kernel stats)."""
    monkeypatch.setenv("REPRO_SCHED", scheduler)
    monkeypatch.setenv("REPRO_BATCH", batch)
    monkeypatch.setenv("REPRO_FASTFORWARD", "1" if fastforward else "0")
    platform = Platform(config)
    elapsed = platform.run(horizon, stop_when_critical_done=False)
    result = PlatformResult(platform, elapsed)
    return result.summary().to_json(), platform.sim.kernel_stats()


class TestResolve:
    def test_defaults_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_FASTFORWARD", raising=False)
        assert resolve_fastforward() is False

    @pytest.mark.parametrize("value", ["1", "on", "yes", "true"])
    def test_on_values(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_FASTFORWARD", value)
        assert resolve_fastforward() is True

    def test_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_FASTFORWARD", "1")
        assert resolve_fastforward(False) is False

    def test_platform_attaches_engine_only_for_open_loop(self, monkeypatch):
        monkeypatch.setenv("REPRO_FASTFORWARD", "1")
        assert Platform(steady_config()).fastforward is not None
        closed = PlatformConfig(
            masters=(
                MasterSpec(
                    name="acc0",
                    workload="stream_read",
                    region_base=REGION_BASE,
                    region_extent=REGION_BYTES,
                ),
            )
        )
        assert Platform(closed).fastforward is None
        monkeypatch.setenv("REPRO_FASTFORWARD", "0")
        assert Platform(steady_config()).fastforward is None


class TestEngagement:
    def test_macro_steps_the_steady_region(self, monkeypatch):
        """The detector must actually fire on the target shape -- and
        replace the bulk of the event traffic with walked arrivals."""
        _table, stats = run_table(
            steady_config(), monkeypatch, "heap", "1", fastforward=True
        )
        _ref, ref_stats = run_table(
            steady_config(), monkeypatch, "heap", "1", fastforward=False
        )
        assert stats["ff_regions"] > 10
        assert stats["ff_arrivals"] > 1000
        assert stats["ff_cycles_skipped"] > HORIZON // 2
        assert stats["events_dispatched"] < ref_stats["events_dispatched"] // 5

    def test_clock_lands_on_the_horizon(self, monkeypatch):
        monkeypatch.setenv("REPRO_FASTFORWARD", "1")
        platform = Platform(steady_config())
        elapsed = platform.run(HORIZON, stop_when_critical_done=False)
        assert elapsed == HORIZON
        assert platform.sim.now == HORIZON

    def test_declines_unregulated_streams(self, monkeypatch):
        """No regulator -> nothing is analytically blocked; the engine
        must never fire (arrivals are being serviced)."""
        config = PlatformConfig(
            masters=(
                MasterSpec(
                    name="olp0",
                    workload="open_loop_stream",
                    region_base=REGION_BASE,
                    region_extent=REGION_BYTES,
                ),
            )
        )
        _table, stats = run_table(
            config, monkeypatch, "heap", "1", fastforward=True, horizon=5_000
        )
        assert stats["ff_regions"] == 0


class TestByteIdentity:
    @pytest.mark.parametrize("scheduler", ["heap", "calendar"])
    @pytest.mark.parametrize("batch", ["1", "0"])
    def test_steady_single_stream(self, monkeypatch, scheduler, batch):
        off, _ = run_table(
            steady_config(), monkeypatch, scheduler, batch, fastforward=False
        )
        on, stats = run_table(
            steady_config(), monkeypatch, scheduler, batch, fastforward=True
        )
        assert stats["ff_regions"] > 0  # identity must not be vacuous
        assert on == off

    @pytest.mark.parametrize("scheduler", ["heap", "calendar"])
    def test_steady_multi_stream(self, monkeypatch, scheduler):
        config = steady_config(num_streams=3)
        off, _ = run_table(
            config, monkeypatch, scheduler, "1", fastforward=False
        )
        on, stats = run_table(
            config, monkeypatch, scheduler, "1", fastforward=True
        )
        assert stats["ff_regions"] > 0
        assert on == off

    def test_memguard_regulated_stream(self, monkeypatch):
        config = steady_config(
            regulator=memguard_spec(0.01, period_cycles=2048)
        )
        off, _ = run_table(
            config, monkeypatch, "heap", "1", fastforward=False
        )
        on, stats = run_table(
            config, monkeypatch, "heap", "1", fastforward=True
        )
        assert stats["ff_regions"] > 0
        assert on == off

    def test_irregular_mixed_platform(self, monkeypatch):
        """A closed-loop CPU co-runner makes most of the run
        non-advanceable; whatever regions remain must still be exact."""
        config = PlatformConfig(
            masters=(
                MasterSpec(
                    name="cpu0",
                    workload="latency_probe",
                    region_base=REGION_BASE,
                    region_extent=REGION_BYTES,
                    work=300,
                ),
                MasterSpec(
                    name="olp0",
                    workload="open_loop_stream",
                    region_base=REGION_BASE + REGION_BYTES,
                    region_extent=REGION_BYTES,
                    regulator=tc_spec(0.02, window_cycles=512),
                ),
            ),
            seed=5,
        )
        off, _ = run_table(config, monkeypatch, "heap", "1", fastforward=False)
        on, _ = run_table(config, monkeypatch, "heap", "1", fastforward=True)
        assert on == off

    def test_bounded_stream_work(self, monkeypatch):
        """num_requests exhaustion inside a region: the walk must stop
        exactly where the per-event stream would."""
        config = steady_config()
        # work is bytes for accel workloads: 600 requests.
        config = config.with_masters([replace(config.masters[0], work=600 * 64)])
        off, _ = run_table(config, monkeypatch, "heap", "1", fastforward=False)
        on, _ = run_table(config, monkeypatch, "heap", "1", fastforward=True)
        assert on == off


class TestKernelStatsSurface:
    def test_ff_counters_only_when_attached(self):
        stats = Simulator().kernel_stats()
        assert "ff_regions" not in stats
        assert stats["batch_policy"] == "auto"

    def test_ff_counters_reported(self, monkeypatch):
        _table, stats = run_table(
            steady_config(), monkeypatch, "heap", "1", fastforward=True,
            horizon=5_000,
        )
        assert set(
            ("ff_regions", "ff_cycles_skipped", "ff_arrivals")
        ) <= set(stats)
