"""Unit tests for the Simulator event loop."""

import pytest

from repro.errors import ConfigError, SimulationError
from repro.sim.calendar import CalendarQueue
from repro.sim.event import EventQueue
from repro.sim.kernel import (
    SCHEDULERS,
    Phase,
    Simulator,
    resolve_scheduler,
)


class TestScheduling:
    def test_schedule_and_run(self, sim):
        fired = []
        sim.schedule(5, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [5]
        assert sim.now == 5

    def test_schedule_zero_delay(self, sim):
        fired = []
        sim.schedule(0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [0]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-1, lambda: None)

    def test_schedule_at_absolute(self, sim):
        fired = []
        sim.schedule_at(42, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [42]

    def test_schedule_at_past_rejected(self, sim):
        sim.schedule(10, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(5, lambda: None)

    def test_chained_events(self, sim):
        fired = []

        def first():
            fired.append(("first", sim.now))
            sim.schedule(3, second)

        def second():
            fired.append(("second", sim.now))

        sim.schedule(2, first)
        sim.run()
        assert fired == [("first", 2), ("second", 5)]

    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        ev = sim.schedule(5, lambda: fired.append(1))
        ev.cancel()
        sim.run()
        assert fired == []


class TestRunBounds:
    def test_until_stops_clock_at_bound(self, sim):
        fired = []
        sim.schedule(100, lambda: fired.append(1))
        end = sim.run(until=50)
        assert end == 50
        assert fired == []
        assert sim.pending_events == 1

    def test_until_resumes(self, sim):
        fired = []
        sim.schedule(100, lambda: fired.append(sim.now))
        sim.run(until=50)
        sim.run(until=150)
        assert fired == [100]

    def test_until_with_empty_queue_advances_clock(self, sim):
        end = sim.run(until=77)
        assert end == 77
        assert sim.now == 77

    def test_event_exactly_at_until_fires(self, sim):
        fired = []
        sim.schedule(50, lambda: fired.append(1))
        sim.run(until=50)
        assert fired == [1]


class TestIntraCyclePhases:
    def test_phases_order_within_cycle(self, sim):
        order = []
        sim.schedule(5, lambda: order.append("stats"), priority=Phase.STATS)
        sim.schedule(5, lambda: order.append("reg"), priority=Phase.REGULATOR)
        sim.schedule(5, lambda: order.append("arb"), priority=Phase.ARBITER)
        sim.schedule(5, lambda: order.append("master"), priority=Phase.MASTER)
        sim.run()
        assert order == ["reg", "master", "arb", "stats"]


class TestStopAndFinalize:
    def test_request_stop_ends_run(self, sim):
        fired = []

        def stopper():
            fired.append(sim.now)
            sim.request_stop()

        sim.schedule(5, stopper)
        sim.schedule(10, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [5]
        assert sim.pending_events == 1

    def test_finalizers_called_with_end_time(self, sim):
        seen = []
        sim.add_finalizer(lambda now: seen.append(now))
        sim.schedule(9, lambda: None)
        sim.run()
        assert seen == [9]

    def test_step_single_event(self, sim):
        fired = []
        sim.schedule(3, lambda: fired.append(1))
        sim.schedule(7, lambda: fired.append(2))
        assert sim.step() == 3
        assert fired == [1]
        assert sim.step() == 7
        assert sim.step() is None

    def test_run_reentry_rejected(self, sim):
        def evil():
            sim.run()

        sim.schedule(1, evil)
        with pytest.raises(SimulationError):
            sim.run()


class TestSchedulerSelection:
    def test_default_is_auto_starting_on_heap(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCHED", raising=False)
        sim = Simulator()
        assert sim.scheduler == "auto"
        assert sim.backend == "heap"
        queue = getattr(sim._queue, "inner", sim._queue)  # unwrap sanitizer
        assert isinstance(queue, EventQueue)

    def test_static_backend_never_promotes(self):
        sim = Simulator(scheduler="calendar")
        assert sim.backend == "calendar"
        assert sim._auto_pending is False

    def test_env_selects_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCHED", "heap")
        sim = Simulator()
        assert sim.scheduler == "heap"
        queue = getattr(sim._queue, "inner", sim._queue)  # unwrap sanitizer
        assert isinstance(queue, EventQueue)

    def test_argument_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCHED", "heap")
        sim = Simulator(scheduler="calendar")
        assert sim.scheduler == "calendar"
        queue = getattr(sim._queue, "inner", sim._queue)  # unwrap sanitizer
        assert isinstance(queue, CalendarQueue)

    def test_names_are_normalized(self):
        assert resolve_scheduler("  Heap ") == "heap"

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigError):
            Simulator(scheduler="splay-tree")

    def test_unknown_env_value_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCHED", "btree")
        with pytest.raises(ConfigError):
            Simulator()

    def test_empty_env_falls_back_to_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCHED", "")
        assert Simulator().scheduler == "auto"

    def test_registry_matches_backends(self):
        assert SCHEDULERS == {"calendar": CalendarQueue, "heap": EventQueue}
