"""Tests for daemon-event semantics (background activity)."""

from repro.sim.kernel import Simulator


class TestDaemonEvents:
    def test_run_drains_when_only_daemons_remain(self, sim):
        fired = []

        def tick():
            fired.append(sim.now)
            sim.schedule(100, tick, daemon=True)

        sim.schedule(100, tick, daemon=True)
        sim.schedule(250, lambda: fired.append("work"))
        sim.run(until=10_000)
        # Daemons fired while foreground work existed, then the run
        # drained instead of ticking to the horizon.
        assert fired == [100, 200, "work"]
        assert sim.now == 10_000  # clock advanced to the bound

    def test_pure_daemon_queue_never_runs(self, sim):
        fired = []
        sim.schedule(5, lambda: fired.append(1), daemon=True)
        sim.run(until=100)
        assert fired == []

    def test_foreground_keepalive_extends_daemons(self, sim):
        fired = []

        def tick():
            fired.append(sim.now)
            sim.schedule(10, tick, daemon=True)

        sim.schedule(10, tick, daemon=True)
        sim.schedule(55, lambda: None)  # keep-alive
        sim.run()
        assert fired == [10, 20, 30, 40, 50]

    def test_daemon_scheduled_from_foreground(self, sim):
        fired = []

        def work():
            sim.schedule(1, lambda: fired.append("daemon"), daemon=True)
            fired.append("work")

        sim.schedule(5, work)
        sim.run()
        # The daemon was scheduled after the last foreground event, so
        # it never fires.
        assert fired == ["work"]

    def test_cancelled_foreground_eventually_drains(self, sim):
        ev = sim.schedule(50, lambda: None)
        sim.schedule(10, lambda: None)
        ev.cancel()
        # Exact live accounting: the run ends at the last *live*
        # foreground event, never simulating out to the shell at 50.
        end = sim.run()
        assert end == 10

    def test_cancelling_last_foreground_drains_among_daemons(self, sim):
        fired = []

        def refresh():
            fired.append(sim.now)
            sim.schedule(10, refresh, daemon=True)

        sim.schedule(0, refresh, daemon=True)
        victim = sim.schedule(1_000, lambda: fired.append("victim"))

        def cancel_victim():
            victim.cancel()

        sim.schedule(25, cancel_victim)
        sim.run()
        # Once the only remaining foreground event is a cancelled
        # shell the run is drained; daemons stop immediately instead
        # of ticking on to cycle 1000.
        assert "victim" not in fired
        assert sim.now == 25

    def test_step_with_only_daemons_is_drained(self, sim):
        # Consistent with run(): daemons alone never constitute work,
        # so step() reports the simulation as drained instead of
        # dispatching refresh/OS ticks forever.
        fired = []
        sim.schedule(5, lambda: fired.append(1), daemon=True)
        assert sim.step() is None
        assert fired == []

    def test_step_runs_daemons_while_foreground_pending(self, sim):
        fired = []
        sim.schedule(5, lambda: fired.append("daemon"), daemon=True)
        sim.schedule(9, lambda: fired.append("work"))
        assert sim.step() == 5
        assert sim.step() == 9
        assert fired == ["daemon", "work"]
        assert sim.step() is None

    def test_step_drains_when_foreground_becomes_cancelled(self, sim):
        fired = []

        def tick():
            fired.append(sim.now)
            sim.schedule(10, tick, daemon=True)

        sim.schedule(10, tick, daemon=True)
        victim = sim.schedule(1_000, lambda: fired.append("victim"))
        assert sim.step() == 10
        victim.cancel()
        # Only daemons (and a cancelled shell) remain: drained.
        assert sim.step() is None
        assert fired == [10]
