"""Calendar-queue structural tests.

The protocol-level behaviour shared with the reference heap is covered
by the parametrized suites (``test_event_queue.py``) and the
differential tests; these tests aim at the mechanisms specific to the
calendar layout -- the sliding bucket window, overflow migration,
cursor jumps and rewinds -- including states the platform workloads
rarely reach.
"""

import pytest

from repro.errors import SimulationError
from repro.sim.calendar import _BUCKETS, CalendarQueue
from repro.sim.kernel import Simulator


class TestOverflowTier:
    def test_far_future_events_dispatch_in_order(self):
        q = CalendarQueue()
        times = [0, _BUCKETS - 1, _BUCKETS, 3 * _BUCKETS + 7, 10 * _BUCKETS]
        for t in reversed(times):
            q.push(t, 0, lambda: None)
        assert len(q) == len(times)
        assert [q.pop().time for _ in times] == sorted(times)

    def test_migration_preserves_intra_cycle_order(self):
        # Two events far beyond the window, same cycle, distinct
        # priorities: migration must hand them to the ring in a way
        # that still dispatches by (priority, seq).
        q = CalendarQueue()
        far = 5 * _BUCKETS
        q.push(far, 9, lambda: None)
        q.push(far, 1, lambda: None)
        q.push(0, 0, lambda: None)
        assert q.pop().time == 0
        first, second = q.pop(), q.pop()
        assert (first.priority, second.priority) == (1, 9)

    def test_overflow_entry_migrates_once_window_slides(self):
        q = CalendarQueue()
        q.push(1, 0, lambda: None)
        q.push(_BUCKETS + 1, 0, lambda: None)  # just past the window
        assert q.pop().time == 1
        # Advancing the cursor to the next live event slides the
        # window far enough to cover the former overflow entry.
        assert q.peek_time() == _BUCKETS + 1
        assert q.pop().time == _BUCKETS + 1

    def test_cancelled_overflow_events_are_skipped(self):
        q = CalendarQueue()
        q.push(4 * _BUCKETS, 0, lambda: None).cancel()
        q.push(6 * _BUCKETS, 0, lambda: None)
        assert q.peek_time() == 6 * _BUCKETS
        assert q.pop().time == 6 * _BUCKETS

    def test_all_overflow_cancelled_leaves_queue_empty(self):
        q = CalendarQueue()
        for k in range(3):
            q.push((2 + k) * _BUCKETS, 0, lambda: None).cancel()
        assert q.peek_time() is None
        with pytest.raises(SimulationError):
            q.pop()


class TestWindowJumps:
    def test_sparse_events_across_many_windows(self):
        # Each event sits several windows beyond the previous one, so
        # every dispatch forces a cursor jump through the overflow tier.
        q = CalendarQueue()
        times = [k * 7 * _BUCKETS + (k % 3) for k in range(10)]
        for t in times:
            q.push(t, 0, lambda: None)
        assert [q.pop().time for _ in times] == sorted(times)
        assert q.peek_time() is None

    def test_stale_bucket_entries_after_jump_cannot_misfire(self):
        # A cancelled shell left at ring index i, then a jump of
        # exactly _BUCKETS cycles aliases a *live* event onto the same
        # index.  The shell must be purged, not dispatched, and the
        # live event must fire at its own time.
        q = CalendarQueue()
        shell = q.push(5, 0, lambda: None)
        keeper = q.push(10, 0, lambda: None)
        shell.cancel()
        assert q.pop() is keeper
        # Aliases index 5 (cursor has advanced past 5, so time 5 +
        # _BUCKETS maps onto the shell's bucket while in-window).
        q.push(5 + _BUCKETS, 0, lambda: None)
        assert q.peek_time() == 5 + _BUCKETS
        ev = q.pop()
        assert ev.time == 5 + _BUCKETS and not ev.cancelled
        assert len(q) == 0


class TestRewind:
    def test_push_below_cursor_dispatches_first(self):
        q = CalendarQueue()
        q.push(100, 0, lambda: None)
        assert q.peek_time() == 100  # settle advances the cursor to 100
        q.push(40, 0, lambda: None)  # below the cursor: forces a rewind
        assert q.peek_time() == 40
        assert [q.pop().time, q.pop().time] == [40, 100]

    def test_rewind_respects_overflow_boundary(self):
        # After rewinding to an early cycle, an event that used to be
        # in-window may now be beyond the new window's far edge; it
        # must still dispatch in global order.
        q = CalendarQueue()
        q.push(200, 0, lambda: None)
        assert q.peek_time() == 200
        q.push(1, 0, lambda: None)  # rewind: 200 >= 1 + _BUCKETS again
        q.push(90, 0, lambda: None)
        assert [q.pop().time for _ in range(3)] == [1, 90, 200]

    def test_rewind_through_simulator_bounded_run(self):
        # The kernel-level path that makes rewinds reachable: a bounded
        # run leaves the clock at `until` while the queue's cursor has
        # settled on the next event beyond it; a later schedule_at
        # between the two lands below the cursor.
        sim = Simulator(scheduler="calendar")
        fired = []
        sim.schedule_at(500, lambda: fired.append(500))
        sim.run(until=100)
        assert sim.now == 100
        sim.schedule_at(150, lambda: fired.append(150))
        sim.run()
        assert fired == [150, 500]


class TestSameCycleInsert:
    def test_pushes_into_settled_cycle_keep_priority_order(self):
        # After the cursor bucket has been settled (sorted), same-cycle
        # pushes take the ordered-insert path; dispatch order must stay
        # (priority, seq) regardless of arrival order.
        q = CalendarQueue()
        fired = []
        q.push(7, 50, lambda: fired.append("mid"))
        assert q.peek_time() == 7  # settles cycle 7
        q.push(7, 90, lambda: fired.append("late"))
        q.push(7, 10, lambda: fired.append("early"))
        q.push(7, 50, lambda: fired.append("mid2"))
        while q.live_foreground:
            q.pop().callback()
        assert fired == ["early", "mid", "mid2", "late"]

    def test_insert_into_drained_settled_cycle(self):
        # The settled bucket can be drained empty mid-cycle and then
        # receive another same-cycle push (an event callback scheduling
        # zero-delay work); it must dispatch within the same cycle.
        q = CalendarQueue()
        q.push(3, 0, lambda: None)
        assert q.pop_if_at(3) is not None
        q.push(3, 5, lambda: None)
        ev = q.pop_if_at(3)
        assert ev is not None and ev.time == 3 and ev.priority == 5

    def test_same_cycle_cascade_through_simulator(self):
        # A chain of zero-delay schedules inside callbacks -- the
        # dominant platform pattern (kick -> arbitrate -> complete).
        sim = Simulator(scheduler="calendar")
        fired = []

        def chain(depth):
            fired.append(depth)
            if depth < 20:
                sim.schedule(0, lambda: chain(depth + 1))

        sim.schedule_at(9, lambda: chain(0))
        sim.run()
        assert fired == list(range(21))
        assert sim.now == 9


class TestBookkeeping:
    def test_len_counts_ring_and_overflow(self):
        q = CalendarQueue()
        q.push(1, 0, lambda: None)
        q.push(2 * _BUCKETS, 0, lambda: None)
        assert len(q) == 2
        q.pop()
        assert len(q) == 1

    def test_clear_resets_across_tiers(self):
        q = CalendarQueue()
        ev_near = q.push(1, 0, lambda: None)
        ev_far = q.push(3 * _BUCKETS, 0, lambda: None)
        q.clear()
        assert len(q) == 0
        assert q.peek_time() is None
        assert q.live_foreground == 0
        # Handles detached by clear() must be inert afterwards.
        ev_near.cancel()
        ev_far.cancel()
        assert q.live_foreground == 0
        q.push(5, 0, lambda: None)
        assert q.pop().time == 5

    def test_compaction_purges_both_tiers(self):
        q = CalendarQueue()
        ring_events = [q.push(t % _BUCKETS, 0, lambda: None) for t in range(60)]
        far_events = [
            q.push(2 * _BUCKETS + t, 0, lambda: None) for t in range(60)
        ]
        for ev in ring_events:
            ev.cancel()
        for ev in far_events[:40]:
            ev.cancel()
        # 100 of 120 cancelled: the majority threshold was crossed, so
        # shells were reclaimed from ring and overflow alike instead of
        # all 100 lingering until popped.
        assert len(q) < 120
        assert q.live_foreground == 20
        assert sorted(q.pop().time for _ in range(20)) == [
            2 * _BUCKETS + t for t in range(40, 60)
        ]
