"""Unit tests for per-component RNGs and trace recording."""

import pytest

from repro.sim.rng import component_rng
from repro.sim.trace import TraceRecord, TraceRecorder


class TestComponentRng:
    def test_same_inputs_same_stream(self):
        a = component_rng(7, "acc0")
        b = component_rng(7, "acc0")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_names_different_streams(self):
        a = component_rng(7, "acc0")
        b = component_rng(7, "acc1")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_different_seeds_different_streams(self):
        a = component_rng(7, "acc0")
        b = component_rng(8, "acc0")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def _record(master="m0", txn_id=0, created=0, issued=1, accepted=2, completed=10):
    return TraceRecord(
        master=master,
        txn_id=txn_id,
        is_write=False,
        addr=0x1000,
        nbytes=64,
        created=created,
        issued=issued,
        accepted=accepted,
        completed=completed,
    )


class TestTraceRecord:
    def test_latency_decomposition(self):
        rec = _record(created=5, accepted=9, completed=30)
        assert rec.latency == 25
        assert rec.queueing_delay == 4


class TestTraceRecorder:
    def test_records_everything_without_filter(self):
        tr = TraceRecorder()
        tr.record(_record(master="a"))
        tr.record(_record(master="b"))
        assert len(tr) == 2

    def test_filter_by_master(self):
        tr = TraceRecorder(masters=["a"])
        tr.record(_record(master="a"))
        tr.record(_record(master="b"))
        assert len(tr) == 1
        assert tr.for_master("a")[0].master == "a"
        assert tr.for_master("b") == []

    def test_csv_roundtrip(self, tmp_path):
        tr = TraceRecorder()
        tr.record(_record(txn_id=1))
        tr.record(_record(txn_id=2, completed=99))
        path = str(tmp_path / "trace.csv")
        tr.write_csv(path)
        back = TraceRecorder.read_csv(path)
        assert len(back) == 2
        assert back[0] == _record(txn_id=1)
        assert back[1].completed == 99

    def test_csv_roundtrip_preserves_is_write_bool(self, tmp_path):
        """Regression: ``is_write`` must come back as a real bool."""
        tr = TraceRecorder()
        for is_write in (False, True):
            tr.record(
                TraceRecord(
                    master="m0", txn_id=int(is_write), is_write=is_write,
                    addr=0, nbytes=64, created=0, issued=0, accepted=1,
                    completed=2,
                )
            )
        path = str(tmp_path / "trace.csv")
        tr.write_csv(path)
        back = TraceRecorder.read_csv(path)
        assert back[0].is_write is False
        assert back[1].is_write is True

    def test_csv_accepts_str_bool_column(self, tmp_path):
        """Traces written by other tools spell the flag True/False."""
        path = tmp_path / "trace.csv"
        header = (
            "master,txn_id,is_write,addr,nbytes,"
            "created,issued,accepted,completed"
        )
        path.write_text(
            f"{header}\n"
            "m0,0,True,0,64,0,0,1,2\n"
            "m0,1,False,0,64,0,0,1,2\n"
            "m0,2,1,0,64,0,0,1,2\n"
        )
        back = TraceRecorder.read_csv(str(path))
        assert [r.is_write for r in back] == [True, False, True]
        with pytest.raises(ValueError):
            path.write_text(f"{header}\nm0,0,maybe,0,64,0,0,1,2\n")
            TraceRecorder.read_csv(str(path))
