"""Unit tests for per-component RNGs and trace recording."""

import pytest

from repro.sim.rng import component_rng
from repro.sim.trace import TraceRecord, TraceRecorder


class TestComponentRng:
    def test_same_inputs_same_stream(self):
        a = component_rng(7, "acc0")
        b = component_rng(7, "acc0")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_names_different_streams(self):
        a = component_rng(7, "acc0")
        b = component_rng(7, "acc1")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_different_seeds_different_streams(self):
        a = component_rng(7, "acc0")
        b = component_rng(8, "acc0")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def _record(master="m0", txn_id=0, created=0, issued=1, accepted=2, completed=10):
    return TraceRecord(
        master=master,
        txn_id=txn_id,
        is_write=False,
        addr=0x1000,
        nbytes=64,
        created=created,
        issued=issued,
        accepted=accepted,
        completed=completed,
    )


class TestTraceRecord:
    def test_latency_decomposition(self):
        rec = _record(created=5, accepted=9, completed=30)
        assert rec.latency == 25
        assert rec.queueing_delay == 4


class TestTraceRecorder:
    def test_records_everything_without_filter(self):
        tr = TraceRecorder()
        tr.record(_record(master="a"))
        tr.record(_record(master="b"))
        assert len(tr) == 2

    def test_filter_by_master(self):
        tr = TraceRecorder(masters=["a"])
        tr.record(_record(master="a"))
        tr.record(_record(master="b"))
        assert len(tr) == 1
        assert tr.for_master("a")[0].master == "a"
        assert tr.for_master("b") == []

    def test_csv_roundtrip(self, tmp_path):
        tr = TraceRecorder()
        tr.record(_record(txn_id=1))
        tr.record(_record(txn_id=2, completed=99))
        path = str(tmp_path / "trace.csv")
        tr.write_csv(path)
        back = TraceRecorder.read_csv(path)
        assert len(back) == 2
        assert back[0] == _record(txn_id=1)
        assert back[1].completed == 99
