"""Differential tests: batched dispatch against the per-event oracle.

``REPRO_BATCH`` selects between two dispatch loops that are
contractually bit-identical: the batched loop (one ``pop_cycle_batch``
round-trip per cycle chunk, analytic idle-cycle skipping) and the
per-event reference loop (one pop per event).  These tests drive both
loops -- on both scheduler backends, with and without the kernel
sanitizer -- with the same randomized programs and compare full
dispatch journals exactly, plus targeted regressions for every way a
batch can be interrupted: same-cycle pushes that sort into the
undispatched tail (the dirty guard), mid-batch sibling cancels,
self-cancels, daemons, stop requests, bounded runs, and cycles denser
than one drain chunk.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.sim.kernel as kernel_mod
from repro.sim.calendar import _BUCKETS, CalendarQueue
from repro.sim.event import EventQueue
from repro.sim.kernel import (
    AUTO_BATCH,
    AUTO_PROMOTE_THRESHOLD,
    BATCH_CHUNK,
    Phase,
    Simulator,
    resolve_batch,
)

BACKENDS = ("heap", "calendar")

PRIORITIES = (
    Phase.REGULATOR,
    Phase.MASTER,
    Phase.ARBITER,
    Phase.MEMORY,
    Phase.RESPONSE,
    Phase.MONITOR,
    Phase.STATS,
)


def _run_program(scheduler, batch, seed, until=None, stop_after=None):
    """Drive a randomized cascading workload; return its journal.

    The workload mixes same-cycle pushes at arbitrary phases (which
    may sort before, into, or after the in-flight batch), future
    pushes across bucket-wrap distances, retained-handle cancels,
    same-cycle cancel-after-push, daemons, and an optional mid-run
    stop -- every interruption path of the batched loop.
    """
    sim = Simulator(scheduler=scheduler, batch=batch)
    rng = random.Random(seed)
    journal = []
    retained = []
    budget = [400]

    def work(tag):
        journal.append((sim.now, tag))
        if stop_after is not None and len(journal) >= stop_after:
            sim.request_stop()
            return
        if budget[0] <= 0:
            return
        budget[0] -= 1
        r = rng.random()
        if r < 0.40:
            # Same-cycle push at a random phase: sorts anywhere
            # relative to the batch's undispatched tail.
            sim.schedule(
                0, lambda: work(tag + 1), priority=rng.choice(PRIORITIES)
            )
        if rng.random() < 0.55:
            sim.schedule(
                rng.choice((1, 2, 3, rng.randrange(1, 2 * _BUCKETS))),
                lambda: work(tag + 100),
                priority=rng.choice(PRIORITIES),
            )
        if rng.random() < 0.20:
            retained.append(
                sim.schedule(
                    rng.randrange(0, 12),
                    lambda: work(-tag),
                    priority=rng.choice(PRIORITIES),
                )
            )
        if retained and rng.random() < 0.35:
            retained.pop(rng.randrange(len(retained))).cancel()
        if rng.random() < 0.10:
            # Push-then-cancel inside one cycle: the shell must be
            # purged identically on both dispatch paths.
            ev = sim.schedule(0, lambda: journal.append("never"), priority=90)
            ev.cancel()

    # A dense opening cycle across phases, plus daemon background.
    for phase in PRIORITIES:
        sim.schedule(1, lambda p=phase: work(p), priority=phase)
    sim.schedule(
        2, lambda: journal.append((sim.now, "tick")), daemon=True
    )
    if until is not None:
        sim.run(until=until)
        # live_foreground, not pending_events: cancelled shells are
        # purged at different (legal) moments by the two loops.
        journal.append(("bound", sim.now, sim._queue.live_foreground))
    sim.run()
    journal.append(("end", sim.now, sim.events_dispatched))
    return journal


@pytest.mark.parametrize("scheduler", BACKENDS)
@pytest.mark.parametrize("seed", range(8))
def test_randomized_programs_bit_identical(scheduler, seed):
    batched = _run_program(scheduler, True, seed)
    per_event = _run_program(scheduler, False, seed)
    assert batched == per_event


@pytest.mark.parametrize("seed", range(4))
def test_randomized_programs_identical_across_backends(seed):
    journals = {
        (sched, batch): _run_program(sched, batch, seed)
        for sched in BACKENDS
        for batch in (True, False)
    }
    reference = journals[("heap", False)]
    for key, journal in journals.items():
        assert journal == reference, key


@pytest.mark.parametrize("scheduler", BACKENDS)
@pytest.mark.parametrize("seed", range(4))
def test_randomized_programs_with_sanitizer(scheduler, seed, monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    batched = _run_program(scheduler, True, seed)
    per_event = _run_program(scheduler, False, seed)
    assert batched == per_event


@pytest.mark.parametrize("scheduler", BACKENDS)
@pytest.mark.parametrize("seed", range(4))
def test_bounded_and_stopped_runs_bit_identical(scheduler, seed):
    assert _run_program(scheduler, True, seed, until=9) == _run_program(
        scheduler, False, seed, until=9
    )
    assert _run_program(scheduler, True, seed, stop_after=25) == _run_program(
        scheduler, False, seed, stop_after=25
    )


@pytest.mark.parametrize("scheduler", BACKENDS)
@pytest.mark.parametrize("seed", range(4))
def test_chunked_cycles_bit_identical(scheduler, seed, monkeypatch):
    """A tiny drain chunk forces every dense cycle through the
    chunked partial-drain path (requeue-free mid-cycle re-batching)."""
    monkeypatch.setattr(kernel_mod, "BATCH_CHUNK", 3)
    batched = _run_program(scheduler, True, seed)
    monkeypatch.setattr(kernel_mod, "BATCH_CHUNK", BATCH_CHUNK)
    assert batched == _run_program(scheduler, False, seed)


class TestDirtyGuard:
    """Same-cycle pushes that must interleave into the batch tail."""

    @pytest.mark.parametrize("scheduler", BACKENDS)
    def test_push_into_middle_of_tail(self, scheduler):
        # During the priority-0 callback, push priority 20 while the
        # undispatched tail is [10, 30]: the push sorts *between* the
        # remaining entries, so the batch must go dirty even though
        # the next entry (10) dispatches first.  (Regression: a guard
        # comparing only against the next entry misses this.)
        def drive(batch):
            sim = Simulator(scheduler=scheduler, batch=batch)
            order = []

            def pusher():
                order.append(0)
                sim.schedule(0, lambda: order.append(20), priority=20)

            sim.schedule_at(5, pusher, priority=0)
            sim.schedule_at(5, lambda: order.append(10), priority=10)
            sim.schedule_at(5, lambda: order.append(30), priority=30)
            sim.run()
            return order

        assert drive(True) == drive(False) == [0, 10, 20, 30]

    @pytest.mark.parametrize("scheduler", BACKENDS)
    def test_push_before_whole_tail(self, scheduler):
        def drive(batch):
            sim = Simulator(scheduler=scheduler, batch=batch)
            order = []

            def pusher():
                order.append("reg")
                sim.schedule(0, lambda: order.append("mast2"), priority=10)

            sim.schedule_at(3, pusher, priority=Phase.REGULATOR)
            sim.schedule_at(3, lambda: order.append("arb"), priority=20)
            sim.schedule_at(3, lambda: order.append("stats"), priority=90)
            sim.run()
            return order

        assert drive(True) == drive(False) == ["reg", "mast2", "arb", "stats"]

    @pytest.mark.parametrize("scheduler", BACKENDS)
    def test_push_after_tail_is_not_dirty_but_still_fires(self, scheduler):
        # Equal/higher priority sorts after every remaining entry (new
        # seq): no fallback needed, but the event still fires within
        # the same cycle, after the batch.
        def drive(batch):
            sim = Simulator(scheduler=scheduler, batch=batch)
            order = []

            def pusher():
                order.append("a")
                sim.schedule(0, lambda: order.append("late"), priority=90)

            sim.schedule_at(7, pusher, priority=10)
            sim.schedule_at(7, lambda: order.append("b"), priority=90)
            sim.run()
            return order, sim.now

        assert drive(True) == drive(False) == (["a", "b", "late"], 7)


class TestMidBatchCancel:
    @pytest.mark.parametrize("scheduler", BACKENDS)
    def test_sibling_cancel_on_clean_queue(self, scheduler):
        # No daemons, no prior cancels: the calendar backend takes its
        # bulk fast path, so the cancel routes through the batch sink.
        def drive(batch):
            sim = Simulator(scheduler=scheduler, batch=batch)
            order = []
            victims = {}

            def canceller():
                order.append("c")
                victims["v"].cancel()

            sim.schedule_at(4, canceller, priority=0)
            sim.schedule_at(4, lambda: order.append("mid"), priority=10)
            victims["v"] = sim.schedule_at(
                4, lambda: order.append("victim"), priority=30
            )
            sim.run()
            return order, sim.events_dispatched

        assert drive(True) == drive(False) == (["c", "mid"], 2)

    @pytest.mark.parametrize("scheduler", BACKENDS)
    def test_self_cancel_is_noop(self, scheduler):
        def drive(batch):
            sim = Simulator(scheduler=scheduler, batch=batch)
            order = []
            handle = {}

            def selfish():
                order.append("s")
                handle["me"].cancel()

            handle["me"] = sim.schedule_at(2, selfish, priority=0)
            sim.schedule_at(2, lambda: order.append("after"), priority=10)
            sim.schedule_at(6, lambda: order.append("later"))
            sim.run()
            return order, sim.now

        assert drive(True) == drive(False) == (["s", "after", "later"], 6)

    @pytest.mark.parametrize("scheduler", BACKENDS)
    def test_cancel_last_foreground_ends_run_before_daemon(self, scheduler):
        # A callback cancels the only other foreground event while a
        # same-cycle daemon waits behind it: with no live foreground
        # work left, the daemon must not fire (per-event semantics).
        def drive(batch):
            sim = Simulator(scheduler=scheduler, batch=batch)
            order = []
            victims = {}

            def canceller():
                order.append("c")
                victims["v"].cancel()

            sim.schedule_at(3, canceller, priority=0)
            victims["v"] = sim.schedule_at(
                3, lambda: order.append("victim"), priority=20
            )
            sim.schedule_at(
                3, lambda: order.append("daemon"), priority=50, daemon=True
            )
            sim.run()
            return order

        assert drive(True) == drive(False) == ["c"]


class TestIdleSkipAccounting:
    @pytest.mark.parametrize("scheduler", BACKENDS)
    def test_gaps_are_counted(self, scheduler):
        sim = Simulator(scheduler=scheduler, batch=True)
        for t in (5, 6, 20):
            sim.schedule_at(t, lambda: None)
        sim.run()
        # 0->5 skips 1..4 (4 cycles); 6->20 skips 7..19 (13 cycles).
        assert sim.idle_cycles_skipped == 17
        assert sim.kernel_stats()["idle_cycles_skipped"] == 17

    @pytest.mark.parametrize("scheduler", BACKENDS)
    def test_per_event_mode_reports_zero(self, scheduler):
        sim = Simulator(scheduler=scheduler, batch=False)
        sim.schedule_at(50, lambda: None)
        sim.run()
        assert sim.idle_cycles_skipped == 0

    @settings(max_examples=60, deadline=None)
    @given(
        times=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3 * _BUCKETS),
                st.sampled_from(PRIORITIES),
            ),
            min_size=1,
            max_size=40,
        ),
        scheduler=st.sampled_from(BACKENDS),
    )
    def test_idle_skip_never_skips_an_event(self, times, scheduler):
        """Property: every scheduled event fires at exactly its cycle,
        ``now`` is monotonic, and the skip count equals the sum of the
        gaps between consecutive dispatched cycles."""
        sim = Simulator(scheduler=scheduler, batch=True)
        fired = []
        for t, priority in times:
            sim.schedule_at(
                t, lambda t=t: fired.append((sim.now, t)), priority=priority
            )
        sim.run()
        assert len(fired) == len(times)
        assert all(now == t for now, t in fired)
        nows = [now for now, _ in fired]
        assert nows == sorted(nows)
        expected = 0
        previous = 0
        for t in sorted({t for t, _ in times}):
            expected += max(0, t - previous - 1)
            previous = t
        assert sim.idle_cycles_skipped == expected


class TestAutoScheduler:
    def test_tiny_run_stays_on_heap(self):
        sim = Simulator(scheduler="auto", batch=True)
        fired = []
        for i in range(32):
            sim.schedule(1 + i % 5, lambda: fired.append(sim.now))
        sim.run()
        assert len(fired) == 32
        assert sim.backend == "heap"
        assert sim.auto_promotions == 0

    def test_stress_population_promotes_once(self):
        sim = Simulator(scheduler="auto", batch=True)
        count = [0]
        for i in range(AUTO_PROMOTE_THRESHOLD + 64):
            sim.schedule(1 + (i % 7), lambda: count.__setitem__(0, count[0] + 1))
        sim.run()
        assert count[0] == AUTO_PROMOTE_THRESHOLD + 64
        assert sim.backend == "calendar"
        assert sim.auto_promotions == 1
        stats = sim.kernel_stats()
        assert stats["scheduler"] == "auto"
        assert stats["auto_promotions"] == 1

    @pytest.mark.parametrize("batch", (True, False))
    def test_promoting_run_matches_static_backends(self, batch):
        """A workload that crosses the promotion threshold mid-run
        must journal identically under auto, heap, and calendar."""

        def drive(scheduler):
            sim = Simulator(scheduler=scheduler, batch=batch)
            rng = random.Random(99)
            journal = []

            def ramp():
                journal.append((sim.now, "ramp"))
                for i in range(AUTO_PROMOTE_THRESHOLD + 256):
                    delay = 1 + rng.randrange(40)
                    sim.schedule(
                        delay,
                        lambda d=delay: journal.append((sim.now, d)),
                        priority=rng.choice(PRIORITIES),
                    )

            sim.schedule(1, ramp)
            sim.run()
            journal.append(("end", sim.now, sim.events_dispatched))
            return journal

        auto = drive("auto")
        assert auto == drive("heap") == drive("calendar")

    def test_promotion_preserves_daemon_accounting(self):
        """Daemons transplanted by from_heap must keep the calendar's
        live-daemon gate exact (the bulk fast path depends on it)."""
        sim = Simulator(scheduler="auto", batch=True)
        ticks = []

        def tick():
            ticks.append(sim.now)
            if len(ticks) < 50:
                sim.schedule(5, tick, daemon=True)

        sim.schedule(2, tick, daemon=True)
        fired = [0]
        for i in range(AUTO_PROMOTE_THRESHOLD + 16):
            sim.schedule(1 + (i % 30), lambda: fired.__setitem__(0, fired[0] + 1))
        sim.run()
        assert sim.backend == "calendar"
        assert fired[0] == AUTO_PROMOTE_THRESHOLD + 16
        queue = getattr(sim._queue, "inner", sim._queue)
        assert isinstance(queue, CalendarQueue)
        assert queue._live_daemons >= 0


class TestResolveBatch:
    def test_default_is_auto(self, monkeypatch):
        monkeypatch.delenv("REPRO_BATCH", raising=False)
        assert resolve_batch(None) is AUTO_BATCH

    @pytest.mark.parametrize(
        "value", ["0", "off", "no", "false", "event", "per-event"]
    )
    def test_off_values(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_BATCH", value)
        assert resolve_batch(None) is False

    @pytest.mark.parametrize("value", ["1", "on", "batch"])
    def test_on_values(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_BATCH", value)
        assert resolve_batch(None) is True

    def test_explicit_auto_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH", "auto")
        assert resolve_batch(None) is AUTO_BATCH

    def test_argument_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH", "1")
        assert resolve_batch(False) is False
        monkeypatch.setenv("REPRO_BATCH", "0")
        assert resolve_batch(True) is True
        assert resolve_batch(AUTO_BATCH) is AUTO_BATCH


class TestAutoBatch:
    """Population-aware dispatch-mode promotion (``REPRO_BATCH=auto``).

    Mirrors ``TestAutoScheduler``: tiny populations stay on the
    per-event loop (schema-4 bench rows showed batching costs 13-21%
    there), large populations promote to the batched loop once, and a
    promoting run journals identically to both static modes.
    """

    def test_tiny_run_stays_per_event(self):
        sim = Simulator(batch=AUTO_BATCH)
        fired = []
        for i in range(64):
            sim.schedule(1 + i % 5, lambda: fired.append(sim.now))
        sim.run()
        assert len(fired) == 64
        assert sim.batch_mode == "auto"
        assert sim.batched is False
        assert sim.batch_promotions == 0
        assert sim.kernel_stats()["batch_policy"] == "auto"

    def test_stress_population_promotes_once(self):
        sim = Simulator(batch=AUTO_BATCH)
        count = [0]
        for i in range(AUTO_PROMOTE_THRESHOLD + 64):
            sim.schedule(1 + (i % 7), lambda: count.__setitem__(0, count[0] + 1))
        sim.run()
        assert count[0] == AUTO_PROMOTE_THRESHOLD + 64
        assert sim.batched is True
        assert sim.batch_promotions == 1
        assert sim.kernel_stats()["batch_promotions"] == 1

    def test_promotion_runs_finalizers_once(self):
        sim = Simulator(batch=AUTO_BATCH)
        finals = []
        sim.add_finalizer(lambda now: finals.append(now))
        for i in range(AUTO_PROMOTE_THRESHOLD + 8):
            sim.schedule(1 + (i % 3), lambda: None)
        sim.run()
        assert sim.batch_promotions == 1
        assert len(finals) == 1

    @pytest.mark.parametrize("scheduler", BACKENDS)
    @pytest.mark.parametrize("seed", range(4))
    def test_auto_matches_static_modes(self, scheduler, seed):
        auto = _run_program(scheduler, AUTO_BATCH, seed)
        assert auto == _run_program(scheduler, True, seed)
        assert auto == _run_program(scheduler, False, seed)

    def test_promoting_run_matches_static_modes(self):
        """A workload crossing the threshold mid-run must journal
        identically under auto, batched, and per-event dispatch."""

        def drive(batch):
            sim = Simulator(batch=batch)
            rng = random.Random(42)
            journal = []

            def ramp():
                journal.append((sim.now, "ramp"))
                for _ in range(AUTO_PROMOTE_THRESHOLD + 256):
                    delay = 1 + rng.randrange(40)
                    sim.schedule(
                        delay,
                        lambda d=delay: journal.append((sim.now, d)),
                        priority=rng.choice(PRIORITIES),
                    )

            sim.schedule(1, ramp)
            sim.run()
            journal.append(("end", sim.now, sim.events_dispatched))
            return journal, sim.batch_promotions

        auto, promotions = drive(AUTO_BATCH)
        assert promotions == 1
        assert auto == drive(True)[0] == drive(False)[0]

    def test_promoting_bounded_run_respects_until(self):
        sim = Simulator(batch=AUTO_BATCH)
        fired = []
        for i in range(AUTO_PROMOTE_THRESHOLD + 32):
            sim.schedule(1 + (i % 50), lambda: fired.append(sim.now))
        sim.run(until=10)
        assert sim.batch_promotions == 1
        assert sim.now == 10
        assert all(t <= 10 for t in fired)
        sim.run()
        assert len(fired) == AUTO_PROMOTE_THRESHOLD + 32

    def test_auto_composes_with_auto_scheduler(self):
        sim = Simulator(scheduler="auto", batch=AUTO_BATCH)
        count = [0]
        for i in range(AUTO_PROMOTE_THRESHOLD + 64):
            sim.schedule(1 + (i % 9), lambda: count.__setitem__(0, count[0] + 1))
        sim.run()
        assert count[0] == AUTO_PROMOTE_THRESHOLD + 64
        assert sim.backend == "calendar"
        assert sim.batched is True
        assert sim.auto_promotions == 1
        assert sim.batch_promotions == 1


class TestChunkedQueueDrain:
    """pop_cycle_batch(limit=...) at the queue level."""

    @pytest.mark.parametrize("queue_cls", (EventQueue, CalendarQueue))
    def test_chunks_concatenate_to_full_drain(self, queue_cls):
        rng = random.Random(7)
        full, chunked = queue_cls(), queue_cls()
        for _ in range(40):
            priority = rng.randrange(8)
            full.push(3, priority, None)
            chunked.push(3, priority, None)

        out_full = []
        fg_full = full.pop_cycle_batch(3, out_full, None)
        out_chunks = []
        fg_chunks = 0
        while True:
            before = len(out_chunks)
            fg_chunks += chunked.pop_cycle_batch(3, out_chunks, None, 7)
            if len(out_chunks) == before:
                break
        assert fg_full == fg_chunks == 40
        assert [(e[-3], e[-1] is not None) for e in out_full] == [
            (e[-3], e[-1] is not None) for e in out_chunks
        ]
        priorities = [e[-3] for e in out_chunks]
        assert priorities == sorted(priorities)
        assert chunked.live_foreground == 0

    @pytest.mark.parametrize("queue_cls", (EventQueue, CalendarQueue))
    def test_partial_drain_leaves_remainder_poppable(self, queue_cls):
        queue = queue_cls()
        for priority in (5, 1, 3, 9, 7):
            queue.push(10, priority, None)
        out = []
        fg = queue.pop_cycle_batch(10, out, None, 2)
        assert fg == 2
        assert [e[-3] for e in out] == [1, 3]
        assert queue.peek_time() == 10
        assert [queue.pop().priority for _ in range(3)] == [5, 7, 9]

    def test_calendar_daemon_purge_on_chunked_slow_path(self):
        queue = CalendarQueue()
        for priority in (1, 2, 3, 4):
            queue.push(6, priority, None)
        queue.push(6, 5, None, daemon=True)
        cancelled = queue.push(6, 0, None)
        cancelled.cancel()
        out = []
        total_fg = 0
        while True:
            before = len(out)
            total_fg += queue.pop_cycle_batch(6, out, None, 2)
            if len(out) == before:
                break
        assert total_fg == 4
        assert len(out) == 5  # 4 foreground + 1 daemon; shell purged
        assert queue._live_daemons == 0
        assert queue.live_foreground == 0
