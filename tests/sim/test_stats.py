"""Unit tests for statistics collectors."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.sim.stats import Counter, Sampler, StatSet, TimeSeries


class TestCounter:
    def test_add_default(self):
        c = Counter("x")
        c.add()
        c.add()
        assert c.value == 2

    def test_add_amount(self):
        c = Counter("x")
        c.add(64)
        assert c.value == 64

    def test_negative_rejected(self):
        c = Counter("x")
        with pytest.raises(SimulationError):
            c.add(-1)


class TestSampler:
    def test_summary_of_known_population(self):
        s = Sampler("lat")
        for v in (10, 20, 30, 40):
            s.record(v)
        assert s.count == 4
        assert s.mean == 25
        assert s.minimum == 10
        assert s.maximum == 40
        assert s.total == 100

    def test_percentile_nearest_rank(self):
        s = Sampler("lat")
        for v in range(1, 101):
            s.record(v)
        assert s.percentile(50) == 50
        assert s.percentile(95) == 95
        assert s.percentile(99) == 99
        assert s.percentile(100) == 100

    def test_percentile_unsorted_insert_order(self):
        s = Sampler("lat")
        for v in (5, 1, 4, 2, 3):
            s.record(v)
        assert s.percentile(50) == 3

    def test_percentile_bounds_checked(self):
        s = Sampler("lat")
        s.record(1)
        with pytest.raises(SimulationError):
            s.percentile(101)
        with pytest.raises(SimulationError):
            s.percentile(-1)

    def test_empty_sampler_is_safe(self):
        s = Sampler("lat")
        assert s.mean == 0.0
        assert s.percentile(99) == 0
        assert s.stdev == 0.0
        assert s.summary()["count"] == 0.0

    def test_stdev(self):
        s = Sampler("lat")
        for v in (2, 4, 4, 4, 5, 5, 7, 9):
            s.record(v)
        assert s.stdev == pytest.approx(2.138, abs=1e-3)

    def test_record_after_percentile_keeps_correctness(self):
        s = Sampler("lat")
        s.record(10)
        assert s.percentile(50) == 10
        s.record(1)
        assert s.percentile(50) == 1

    @given(st.lists(st.integers(0, 10_000), min_size=1, max_size=300))
    def test_percentile_monotone_in_pct(self, values):
        s = Sampler("lat")
        for v in values:
            s.record(v)
        pcts = [s.percentile(p) for p in (10, 50, 90, 99, 100)]
        assert pcts == sorted(pcts)
        assert s.percentile(100) == max(values)


class TestTimeSeries:
    def test_binning(self):
        ts = TimeSeries("bw", bin_width=10)
        ts.add(0, 5)
        ts.add(9, 5)
        ts.add(10, 7)
        assert ts.bins() == [10, 7]

    def test_sparse_bins_fill_zero(self):
        ts = TimeSeries("bw", bin_width=10)
        ts.add(0, 1)
        ts.add(35, 2)
        assert ts.bins() == [1, 0, 0, 2]

    def test_explicit_range(self):
        ts = TimeSeries("bw", bin_width=10)
        ts.add(25, 4)
        assert ts.bins(0, 4) == [0, 0, 4, 0, 0]

    def test_max_and_total(self):
        ts = TimeSeries("bw", bin_width=10)
        ts.add(1, 3)
        ts.add(2, 3)
        ts.add(11, 4)
        assert ts.max_bin() == 6
        assert ts.total() == 10

    def test_empty(self):
        ts = TimeSeries("bw", bin_width=10)
        assert ts.bins() == []
        assert ts.max_bin() == 0
        assert ts.total() == 0

    def test_zero_width_rejected(self):
        with pytest.raises(SimulationError):
            TimeSeries("bw", bin_width=0)


class TestStatSet:
    def test_counters_are_memoized(self):
        ss = StatSet("cmp")
        ss.counter("a").add(3)
        ss.counter("a").add(4)
        assert ss.counter("a").value == 7

    def test_as_dict_flattens(self):
        ss = StatSet("cmp")
        ss.counter("n").add(2)
        ss.sampler("lat").record(5)
        ss.series("bw", 10).add(0, 1)
        d = ss.as_dict()
        assert d["n"] == 2
        assert d["lat"]["count"] == 1.0
        assert d["bw"]["total"] == 1
