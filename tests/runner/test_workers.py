"""Worker-count resolution: affinity, cgroup quota, REPRO_JOBS.

The automatic worker count must reflect what the container actually
grants (scheduling affinity clamped by the cgroup-v2 CPU quota), not
what the machine physically has, and every resolved figure must carry
a provenance string a bench record can surface.
"""

import pytest

import repro.runner.parallel as parallel
from repro.errors import ConfigError
from repro.runner.parallel import (
    _affinity_cpus,
    _cgroup_cpu_quota,
    default_workers,
    resolve_workers,
)


def cpu_max(tmp_path, text):
    path = tmp_path / "cpu.max"
    path.write_text(text)
    return str(path)


class TestCgroupQuota:
    def test_unlimited_means_no_clamp(self, tmp_path):
        assert _cgroup_cpu_quota(cpu_max(tmp_path, "max 100000\n")) is None

    def test_quota_rounds_up_to_whole_cpus(self, tmp_path):
        assert _cgroup_cpu_quota(cpu_max(tmp_path, "200000 100000")) == 2
        assert _cgroup_cpu_quota(cpu_max(tmp_path, "150000 100000")) == 2
        assert _cgroup_cpu_quota(cpu_max(tmp_path, "50000 100000")) == 1

    def test_missing_file_means_no_clamp(self, tmp_path):
        assert _cgroup_cpu_quota(str(tmp_path / "absent")) is None

    def test_malformed_content_means_no_clamp(self, tmp_path):
        for text in ("", "garbage", "100000", "a b", "1 2 3", "-1 100000"):
            assert _cgroup_cpu_quota(cpu_max(tmp_path, text)) is None


class TestAffinity:
    def test_reports_at_least_one_cpu_with_provenance(self):
        cpus, source = _affinity_cpus()
        assert cpus >= 1
        assert source in ("sched_getaffinity", "os.cpu_count")

    def test_falls_back_to_cpu_count(self, monkeypatch):
        monkeypatch.delattr("os.sched_getaffinity", raising=False)
        monkeypatch.setattr("os.cpu_count", lambda: 6)
        assert _affinity_cpus() == (6, "os.cpu_count")


class TestResolveWorkers:
    @pytest.fixture(autouse=True)
    def no_jobs_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)

    def fake_topology(self, monkeypatch, cpus, quota):
        monkeypatch.setattr(
            parallel, "_affinity_cpus", lambda: (cpus, "sched_getaffinity")
        )
        monkeypatch.setattr(parallel, "_cgroup_cpu_quota", lambda: quota)

    def test_affinity_when_unclamped(self, monkeypatch):
        self.fake_topology(monkeypatch, cpus=8, quota=None)
        assert resolve_workers() == (8, "sched_getaffinity")
        assert default_workers() == 8

    def test_cgroup_quota_clamps_affinity(self, monkeypatch):
        self.fake_topology(monkeypatch, cpus=8, quota=2)
        count, source = resolve_workers()
        assert count == 2
        assert source == "cgroup cpu.max=2 (clamps sched_getaffinity=8)"

    def test_wide_quota_does_not_inflate(self, monkeypatch):
        self.fake_topology(monkeypatch, cpus=4, quota=16)
        assert resolve_workers() == (4, "sched_getaffinity")

    def test_env_override_skips_topology(self, monkeypatch):
        self.fake_topology(monkeypatch, cpus=8, quota=2)
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_workers() == (5, "REPRO_JOBS=5")

    def test_auto_and_empty_mean_topology(self, monkeypatch):
        self.fake_topology(monkeypatch, cpus=3, quota=None)
        for value in ("auto", "AUTO", "", "  "):
            monkeypatch.setenv("REPRO_JOBS", value)
            assert resolve_workers() == (3, "sched_getaffinity")

    def test_zero_is_an_error_pointing_at_auto(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "0")
        with pytest.raises(ConfigError, match="REPRO_JOBS=auto"):
            resolve_workers()

    def test_negative_and_garbage_rejected(self, monkeypatch):
        for value in ("-1", "-8", "many", "2.5"):
            monkeypatch.setenv("REPRO_JOBS", value)
            with pytest.raises(ConfigError):
                resolve_workers()
