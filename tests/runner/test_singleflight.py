"""Cross-process single-flight: two runners, one simulation.

Two ParallelRunners sharing a cache root stand in for two concurrent
sweep processes.  The claim protocol must guarantee exactly one
execution per spec, with the loser satisfied from the winner's
published entry -- and every failure mode (stale claim, orphaned
claim, failed batch) must degrade to "compute it locally", never to a
wedge or a wrong result.
"""

import os
import threading
import time

import pytest

import repro.runner.parallel as parallel
from repro.runner import ParallelRunner, ResultCache, RunSpec
from repro.soc.presets import zcu102


def small_spec(seed=1):
    return RunSpec(config=zcu102(num_accels=1, cpu_work=100, seed=seed))


@pytest.fixture
def counted_execute(monkeypatch):
    """Slow the simulator down and count real executions."""
    calls = []
    real = parallel._timed_execute

    def slow(spec):
        calls.append(spec.content_hash())
        time.sleep(0.4)
        return real(spec)

    monkeypatch.setattr(parallel, "_timed_execute", slow)
    return calls


class TestConcurrentRunners:
    def test_same_spec_executes_exactly_once(
        self, tmp_path, counted_execute
    ):
        spec = small_spec(seed=77)
        barrier = threading.Barrier(2)
        results = [None, None]
        stats = [None, None]

        def drive(i):
            runner = ParallelRunner(
                max_workers=1, cache=ResultCache(root=str(tmp_path))
            )
            barrier.wait()
            results[i] = runner.run([spec])[0]
            stats[i] = runner.last_stats

        threads = [
            threading.Thread(target=drive, args=(i,)) for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert len(counted_execute) == 1  # the whole point
        assert results[0].to_json() == results[1].to_json()
        assert sum(s.executed for s in stats) == 1
        loser = next(s for s in stats if s.executed == 0)
        # The loser either waited out the winner's claim or (rarely)
        # arrived after publication and scored a plain cache hit.
        assert loser.single_flight_waited + loser.cache_hits == 1


class TestClaimFailureModes:
    def test_stale_claim_is_stolen_and_executed(self, tmp_path):
        spec = small_spec(seed=78)
        orphan = ResultCache(root=str(tmp_path)).try_claim(spec)
        assert orphan is not None
        past = time.time() - 3600  # repro: allow[DET001]
        os.utime(orphan.path, (past, past))
        cache = ResultCache(root=str(tmp_path), claim_ttl=1.0)
        runner = ParallelRunner(max_workers=1, cache=cache)
        runner.run([spec])
        assert runner.last_stats.executed == 1
        assert runner.last_stats.single_flight_waited == 0

    def test_fresh_orphan_claim_times_out_to_local_run(self, tmp_path):
        spec = small_spec(seed=79)
        orphan = ResultCache(root=str(tmp_path)).try_claim(spec)
        assert orphan is not None  # never released, never published
        cache = ResultCache(root=str(tmp_path))
        runner = ParallelRunner(
            max_workers=1, cache=cache, claim_wait_seconds=0.2
        )
        out = runner.run([spec])
        stats = runner.last_stats
        assert stats.executed == 1  # patience ran out, computed locally
        assert stats.single_flight_waited == 0
        assert len(out) == 1
        # The local run still published, so the entry now exists.
        assert ResultCache(root=str(tmp_path)).get(spec) is not None

    def test_single_flight_off_ignores_claims(self, tmp_path):
        spec = small_spec(seed=80)
        assert ResultCache(root=str(tmp_path)).try_claim(spec) is not None
        cache = ResultCache(root=str(tmp_path))
        runner = ParallelRunner(
            max_workers=1,
            cache=cache,
            single_flight=False,
            claim_wait_seconds=2.0,
        )
        runner.run([spec])
        stats = runner.last_stats
        assert stats.executed == 1
        assert stats.single_flight_waited == 0
        assert stats.wall_seconds < 1.5  # never polled the claim

    def test_failed_batch_releases_its_claims(self, tmp_path, monkeypatch):
        spec = small_spec(seed=81)
        cache = ResultCache(root=str(tmp_path))

        def boom(s):
            raise RuntimeError("sim exploded")

        monkeypatch.setattr(parallel, "_timed_execute", boom)
        runner = ParallelRunner(max_workers=1, cache=cache)
        with pytest.raises(RuntimeError):
            runner.run([spec])
        # No leftover claim: another runner must not wait out the TTL
        # for a result that will never arrive.
        assert not os.path.exists(cache.claim_path_for(spec))
