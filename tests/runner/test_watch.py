"""Live probe streaming through ``repro serve``: the ``watch`` and
``probe_list`` ops, the synchronous client, and the frame renderer.

The server executes runs in-process (``max_workers=1``) so the
process-global publisher installed at server start sees the sampler's
frames and fans them out to subscribers over the real Unix socket.
"""

import asyncio
import json
import socket
import threading

import pytest

from repro.probes.watch import WatchView, iter_watch, probe_list
from repro.runner import ParallelRunner, RunSpec
from repro.runner.serve import BatchServer, request_runs
from repro.soc.presets import zcu102

pytestmark = pytest.mark.skipif(
    not hasattr(socket, "AF_UNIX"), reason="requires Unix sockets"
)


def watch_spec(seed=1):
    # Long enough (hogs + real work) that a 256-cycle sampling period
    # yields plenty of frames while the run is in flight.
    return RunSpec(
        config=zcu102(num_accels=2, cpu_work=400, seed=seed),
        max_cycles=400_000,
    )


class ServerHarness:
    """A BatchServer running on its own thread + event loop."""

    def __init__(self, runner, socket_path, **kwargs):
        self.server = BatchServer(runner, socket_path=socket_path, **kwargs)
        self.loop = asyncio.new_event_loop()
        started = threading.Event()

        def main():
            asyncio.set_event_loop(self.loop)
            self.loop.run_until_complete(self.server.start())
            started.set()
            self.loop.run_forever()

        self.thread = threading.Thread(target=main, daemon=True)
        self.thread.start()
        assert started.wait(10), "server failed to start"

    def stop(self):
        asyncio.run_coroutine_threadsafe(
            self.server.close(), self.loop
        ).result(timeout=10)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=10)
        self.loop.close()


@pytest.fixture
def served(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_PROBE_PERIOD", "256")
    monkeypatch.delenv("REPRO_SLO", raising=False)
    sock = str(tmp_path / "w.sock")
    runner = ParallelRunner(max_workers=1)
    harness = ServerHarness(runner, sock)
    try:
        yield sock, harness.server
    finally:
        harness.stop()
        runner.close()


def subscribe(sock, out, **kwargs):
    """Collect watch messages on a background thread."""

    def main():
        for message in iter_watch(sock, timeout=60, **kwargs):
            out.append(message)

    thread = threading.Thread(target=main)
    thread.start()
    return thread


class TestWatchOp:
    def test_streams_frames_from_inflight_run(self, served):
        sock, server = served
        messages = []
        watcher = subscribe(sock, messages, max_frames=3)
        request_runs(sock, [watch_spec(seed=11)], timeout=120)
        watcher.join(timeout=60)
        assert not watcher.is_alive()
        frames = [m for m in messages if m.get("event") == "frame"]
        metas = [m for m in messages if m.get("event") == "meta"]
        assert len(frames) == 3
        assert metas and any(
            p["name"] == "kernel/now" for p in metas[-1]["probes"]
        )
        assert frames[0]["time"] >= 256
        assert "port/cpu0/bytes" in frames[0]["values"]
        assert server.stats.watches == 1
        assert server.stats.frames >= 3

    def test_probe_filter_restricts_values(self, served):
        sock, _server = served
        messages = []
        watcher = subscribe(
            sock, messages, probes=["port/*/bytes"], max_frames=2
        )
        request_runs(sock, [watch_spec(seed=12)], timeout=120)
        watcher.join(timeout=60)
        frames = [m for m in messages if m.get("event") == "frame"]
        assert frames
        for frame in frames:
            assert frame["values"]
            assert all(n.endswith("/bytes") for n in frame["values"])

    def test_unbounded_watch_ends_with_the_run(self, served):
        sock, _server = served
        messages = []
        watcher = subscribe(sock, messages, max_frames=None)
        request_runs(sock, [watch_spec(seed=13)], timeout=120)
        watcher.join(timeout=60)
        assert not watcher.is_alive(), "watch must end on the run's end event"
        assert messages[-1].get("event") == "end"
        assert any(m.get("event") == "frame" for m in messages)

    def test_probe_list_reflects_last_run(self, served):
        sock, _server = served
        assert probe_list(sock) == []
        messages = []
        watcher = subscribe(sock, messages, max_frames=1)
        request_runs(sock, [watch_spec(seed=14)], timeout=120)
        watcher.join(timeout=60)
        listed = probe_list(sock)
        names = {p["name"] for p in listed}
        assert "kernel/now" in names
        assert "port/acc0/bytes" in names

    def test_bad_watch_arguments_are_error_lines(self, served):
        sock, _server = served
        for line in (
            '{"op": "watch", "max_frames": 0}',
            '{"op": "watch", "max_frames": "soon"}',
            '{"op": "watch", "probes": "not-a-list"}',
        ):
            with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as raw:
                raw.settimeout(10)
                raw.connect(sock)
                raw.sendall(line.encode() + b"\n")
                with raw.makefile("r", encoding="utf-8") as stream:
                    reply = json.loads(stream.readline())
            assert "error" in reply


class TestWatchView:
    def _frame(self, time, nbytes, throttled, tokens):
        return {
            "time": time,
            "values": {
                "port/acc0/bytes": nbytes,
                "port/acc0/throttle_cycles": throttled,
                "port/acc0/last_latency": 40,
                "port/acc0/outstanding": 2,
                "reg/acc0/tokens": tokens,
                "reg/acc0/budget_bytes": 512,
                "kernel/now": time,
            },
        }

    def test_rates_are_deltas_between_frames(self):
        view = WatchView()
        view.render(self._frame(1000, 4000, 100, 256))
        table = view.render(self._frame(2000, 8000, 350, 128))
        assert "acc0" in table
        assert "cycle 2000" in table
        # (8000-4000)/1000 bytes/cycle and (350-100)/1000 duty.
        assert "4" in table
        assert "0.25" in table

    def test_headroom_is_tokens_over_budget(self):
        view = WatchView()
        table = view.render(self._frame(1000, 0, 0, 256))
        assert "headroom" in table
        assert "0.5" in table

    def test_frame_without_master_probes(self):
        view = WatchView()
        out = view.render({"time": 5, "values": {"kernel/now": 5}})
        assert "no per-master probes" in out


class TestCli:
    def test_watch_parser_accepts_the_documented_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            [
                "watch",
                "--socket", "w.sock",
                "--probes", "port/*/bytes", "reg/*",
                "--once",
                "--json",
                "--max-frames", "5",
                "--timeout", "3.5",
                "--sample-period", "512",
                "--slo", '["dram/bytes<=1"]',
                "--flightrec", "out",
            ]
        )
        assert args.fn is not None
        assert args.socket == "w.sock"
        assert args.probes == ["port/*/bytes", "reg/*"]
        assert args.once and args.json
        assert args.max_frames == 5
        assert args.sample_period == 512

    def test_watch_local_once_json(self, capsys, monkeypatch, tmp_path):
        """Local mode: run a small experiment, print one JSON frame."""
        import os

        from repro.cli import main

        monkeypatch.delenv("REPRO_SLO", raising=False)
        monkeypatch.chdir(tmp_path)
        code = main(
            [
                "watch", "zcu102",
                "--hogs", "1", "--work", "200",
                "--sample-period", "256",
                "--once", "--json",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out.strip().splitlines()
        frame = json.loads(out[-1])
        assert frame["event"] == "frame"
        assert "port/cpu0/bytes" in frame["values"]
        assert not os.path.exists(str(tmp_path / "results"))

    def test_watch_local_slo_dumps_flightrec(self, capsys, monkeypatch, tmp_path):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        code = main(
            [
                "watch", "zcu102",
                "--hogs", "2", "--work", "300",
                "--sample-period", "256",
                "--once", "--json",
                "--slo", '["dram/bytes<=1"]',
                "--flightrec", str(tmp_path / "rec"),
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert (tmp_path / "rec" / "dump_000" / "history.json").is_file()
        assert "flight recorder: dumped" in captured.out
