"""Tests for the parallel runner: ordering, dedup, caching, fallback.

The determinism contract (same seed => byte-identical summaries from
the serial, parallel, and cache-hit paths) is asserted here; it is
what makes ``parallel=True`` safe to use in every benchmark.
"""

import pytest

from repro.errors import ConfigError
from repro.runner import (
    ParallelRunner,
    ResultCache,
    RunSpec,
    execute_spec,
)
from repro.runner.parallel import (
    _timed_execute,
    default_workers,
    resolve_workers,
)
from repro.runner.pool import PoolUnavailable, WorkerPool, _run_chunk
from repro.soc.presets import zcu102


def small_spec(seed=1, accels=1):
    return RunSpec(config=zcu102(num_accels=accels, cpu_work=100, seed=seed))


@pytest.fixture(scope="module")
def spec_batch():
    return [small_spec(seed=s) for s in (1, 2, 3)]


@pytest.fixture(scope="module")
def serial_batch(spec_batch):
    """Ground truth: the batch executed by the plain in-process path."""
    return [execute_spec(s) for s in spec_batch]


class TestDeterminism:
    def test_serial_runner_matches_direct_execution(
        self, spec_batch, serial_batch
    ):
        runner = ParallelRunner(max_workers=1)
        out = runner.run(list(spec_batch))
        assert [s.to_json() for s in out] == [
            s.to_json() for s in serial_batch
        ]
        assert runner.last_stats.mode == "serial"

    def test_parallel_matches_serial_byte_identically(
        self, spec_batch, serial_batch
    ):
        with ParallelRunner(max_workers=2) as runner:
            out = runner.run(list(spec_batch))
        assert [s.to_json() for s in out] == [
            s.to_json() for s in serial_batch
        ]

    def test_cache_hit_matches_serial_byte_identically(
        self, spec_batch, serial_batch, tmp_path
    ):
        cache = ResultCache(root=str(tmp_path))
        runner = ParallelRunner(max_workers=1, cache=cache)
        runner.run(list(spec_batch))  # populate
        out = runner.run(list(spec_batch))  # all hits, via JSON round-trip
        assert runner.last_stats.executed == 0
        assert runner.last_stats.cache_hits == len(spec_batch)
        assert [s.to_json() for s in out] == [
            s.to_json() for s in serial_batch
        ]

    def test_summary_json_roundtrip_is_identity(self, serial_batch):
        for summary in serial_batch:
            back = type(summary).from_json(summary.to_json())
            assert back.to_json() == summary.to_json()
            assert back == summary


class TestOrderingAndDedup:
    def test_results_in_spec_order(self, spec_batch, serial_batch):
        with ParallelRunner(max_workers=2) as runner:
            reversed_out = runner.run(list(reversed(spec_batch)))
        assert [s.to_json() for s in reversed_out] == [
            s.to_json() for s in reversed(serial_batch)
        ]

    def test_identical_specs_run_once(self):
        spec = small_spec()
        runner = ParallelRunner(max_workers=1)
        out = runner.run([spec, spec, spec])
        assert runner.last_stats.executed == 1
        assert runner.last_stats.deduped == 2
        assert out[0].to_json() == out[1].to_json() == out[2].to_json()

    def test_empty_batch(self):
        runner = ParallelRunner(max_workers=1)
        assert runner.run([]) == []
        assert runner.last_stats.total == 0


class TestCacheIntegration:
    def test_poisoned_entry_recomputed_not_fatal(self, tmp_path):
        cache = ResultCache(root=str(tmp_path))
        spec = small_spec()
        runner = ParallelRunner(max_workers=1, cache=cache)
        first = runner.run([spec])[0]
        with open(cache.path_for(spec), "w") as fh:
            fh.write('{"schema": 1, "spec_hash": "bad"')  # torn write
        again = runner.run([spec])[0]
        assert runner.last_stats.executed == 1  # recomputed
        assert again.to_json() == first.to_json()
        # And the entry healed: a third run is a pure cache hit.
        runner.run([spec])
        assert runner.last_stats.executed == 0

    def test_warm_cache_runs_zero_simulations(self, tmp_path):
        cache = ResultCache(root=str(tmp_path))
        specs = [small_spec(seed=s) for s in (4, 5)]
        ParallelRunner(max_workers=1, cache=cache).run(specs)
        runner = ParallelRunner(max_workers=1, cache=cache)
        runner.run(specs)
        assert runner.last_stats.executed == 0


class TestWorkerSelection:
    def test_repro_jobs_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert ParallelRunner().max_workers == 7
        assert default_workers() == 7
        assert resolve_workers() == (7, "REPRO_JOBS=7")

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        runner = ParallelRunner(max_workers=2)
        assert runner.max_workers == 2
        assert runner.worker_resolution() == (2, "explicit argument")

    def test_auto_env_means_auto(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "auto")
        count, source = resolve_workers()
        assert count >= 1
        assert "REPRO_JOBS" not in source  # affinity/cgroup provenance

    def test_bad_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "lots")
        with pytest.raises(ConfigError):
            default_workers()

    def test_zero_env_rejected(self, monkeypatch):
        # REPRO_JOBS=0 used to mean auto; it is now an explicit error
        # pointing at REPRO_JOBS=auto.
        monkeypatch.setenv("REPRO_JOBS", "0")
        with pytest.raises(ConfigError, match="auto"):
            default_workers()

    def test_negative_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "-2")
        with pytest.raises(ConfigError):
            default_workers()

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ConfigError):
            ParallelRunner(max_workers=0)

    def test_stats_record_worker_source(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "2")
        runner = ParallelRunner()
        runner.run([small_spec(), small_spec(seed=2)])
        assert runner.last_stats.worker_source == "REPRO_JOBS=2"
        runner.close()


class TestFallbackReason:
    def test_max_workers_one_records_reason(self):
        runner = ParallelRunner(max_workers=1)
        runner.run([small_spec(), small_spec(seed=2)])
        assert runner.last_stats.mode == "serial"
        assert runner.last_stats.fallback_reason == "max_workers=1"

    def test_single_spec_batch_records_reason(self):
        runner = ParallelRunner(max_workers=4)
        runner.run([small_spec()])
        assert runner.last_stats.mode == "serial"
        assert runner.last_stats.fallback_reason == "single spec in batch"

    def test_parallel_batch_records_no_reason(self, spec_batch):
        with ParallelRunner(max_workers=2) as runner:
            runner.run(list(spec_batch))
        if runner.last_stats.mode == "parallel":
            assert runner.last_stats.fallback_reason is None
        else:
            # Pool unavailable on this box: the cause must be recorded.
            assert runner.last_stats.fallback_reason

    def test_warm_cache_batch_records_no_reason(self, tmp_path):
        cache = ResultCache(root=str(tmp_path))
        spec = small_spec()
        ParallelRunner(max_workers=1, cache=cache).run([spec])
        runner = ParallelRunner(max_workers=1, cache=cache)
        runner.run([spec])
        assert runner.last_stats.executed == 0
        assert runner.last_stats.fallback_reason is None

    def test_pool_failure_records_cause(
        self, spec_batch, serial_batch, monkeypatch
    ):
        def broken_map(self, items):
            raise PoolUnavailable() from OSError("no /dev/shm")

        monkeypatch.setattr(WorkerPool, "map", broken_map)
        runner = ParallelRunner(max_workers=2)
        out = runner.run(list(spec_batch))
        assert runner.last_stats.mode == "serial"
        assert runner.last_stats.fallback_reason == "OSError: no /dev/shm"
        assert [s.to_json() for s in out] == [
            s.to_json() for s in serial_batch
        ]

    def test_telemetry_report_surfaces_reason(self):
        from repro.telemetry import RunnerTelemetry

        runner = ParallelRunner(max_workers=1)
        runner.run([small_spec()])
        report = RunnerTelemetry.from_runner(runner)
        assert report.fallback_reason == "max_workers=1"
        assert report.to_dict()["fallback_reason"] == "max_workers=1"


class TestChunkedSubmission:
    def test_worker_chunk_matches_direct_execution(self, spec_batch):
        pairs = _run_chunk(_timed_execute, list(spec_batch))
        assert [s.to_json() for s, _ in pairs] == [
            execute_spec(s).to_json() for s in spec_batch
        ]
        assert all(seconds > 0 for _, seconds in pairs)

    def test_uneven_batch_matches_serial_byte_identically(self):
        # 5 specs over 2 workers with chunk_size=2 -> chunks of
        # 2+2+1; chunk-order reassembly must equal spec order.
        specs = [small_spec(seed=s) for s in (11, 12, 13, 14, 15)]
        expected = [execute_spec(s).to_json() for s in specs]
        with ParallelRunner(max_workers=2, chunk_size=2) as runner:
            out = runner.run(specs)
        assert [s.to_json() for s in out] == expected


class TestMonitorSpecs:
    def test_monitor_bins_survive_all_paths(self, tmp_path):
        spec = RunSpec(
            config=zcu102(num_accels=1, cpu_work=100),
            monitor_master="acc0",
            monitor_bin_cycles=256,
        )
        direct = execute_spec(spec)
        assert direct.monitor_bins is not None
        assert direct.monitor_bin_cycles == 256
        assert sum(direct.monitor_bins) > 0
        cache = ResultCache(root=str(tmp_path))
        runner = ParallelRunner(max_workers=1, cache=cache)
        runner.run([spec])
        cached = runner.run([spec])[0]
        assert cached.monitor_bins == direct.monitor_bins
