"""WorkerPool: ordering, persistence, crash recovery, fallback signal.

Worker functions live at module level so they pickle by qualified
name.  Crash-injecting functions only crash inside a pool worker
(``multiprocessing.parent_process()`` is set there), so the pool's
re-execute-in-parent recovery path genuinely succeeds.
"""

import multiprocessing
import os
import time

import pytest

from repro.errors import ConfigError
from repro.runner import execute_spec
from repro.runner.parallel import ParallelRunner
from repro.runner.pool import PoolUnavailable, WorkerPool, _run_chunk
from repro.runner.spec import RunSpec
from repro.soc.presets import zcu102


def _double(x):
    return x * 2


def _sleepy(item):
    delay, value = item
    time.sleep(delay)
    return value


def _crash_or_double(item):
    kind, value = item
    if kind == "crash" and multiprocessing.parent_process() is not None:
        os._exit(13)  # abrupt worker death, not an exception
    return value * 2


def small_spec(seed=1, cpu_work=100):
    return RunSpec(
        config=zcu102(num_accels=1, cpu_work=cpu_work, seed=seed)
    )


class TestMapBasics:
    def test_results_in_submission_order(self):
        # Later items finish first; the output order must not care.
        items = [(0.2, "slow"), (0.0, "quick"), (0.0, "quicker")]
        with WorkerPool(3, _sleepy) as pool:
            assert pool.map(items) == ["slow", "quick", "quicker"]

    def test_empty_map_is_free(self):
        pool = WorkerPool(2, _double)
        assert pool.map([]) == []
        assert not pool.alive  # no executor was ever started
        assert pool.batches == 0

    def test_chunked_submission_preserves_order(self):
        with WorkerPool(2, _double, chunk_size=2) as pool:
            assert pool.map([1, 2, 3, 4, 5]) == [2, 4, 6, 8, 10]

    def test_run_chunk_matches_serial(self):
        assert _run_chunk(_double, [1, 2, 3]) == [2, 4, 6]

    def test_invalid_sizing_rejected(self):
        with pytest.raises(ConfigError):
            WorkerPool(0, _double)
        with pytest.raises(ConfigError):
            WorkerPool(2, _double, chunk_size=0)


class TestPersistence:
    def test_workers_survive_across_batches(self):
        with WorkerPool(2, _double) as pool:
            assert pool.map([1, 2, 3]) == [2, 4, 6]
            executor = pool._executor
            assert pool.alive
            assert pool.map([4, 5]) == [8, 10]
            assert pool._executor is executor  # same workers, no respawn
            assert pool.batches == 2

    def test_close_then_reuse_restarts(self):
        pool = WorkerPool(2, _double)
        assert pool.map([1]) == [2]
        pool.close()
        assert not pool.alive
        assert pool.map([2]) == [4]  # transparently restarted
        pool.close()


class TestCrashRecovery:
    def test_proven_pool_recovers_in_parent(self):
        with WorkerPool(2, _crash_or_double) as pool:
            # Prove the pool with a clean batch first.
            assert pool.map([("ok", 1), ("ok", 2)]) == [2, 4]
            out = pool.map([("ok", 3), ("crash", 4), ("ok", 5)])
        # The crash cost time, never results: every item completed,
        # the crashed one (at least) re-executed in the parent.
        assert out == [6, 8, 10]
        assert pool.recovered >= 1

    def test_unproven_pool_raises_pool_unavailable(self):
        pool = WorkerPool(2, _crash_or_double)
        with pytest.raises(PoolUnavailable) as excinfo:
            pool.map([("crash", 1), ("crash", 2)])
        assert excinfo.value.__cause__ is not None
        assert not pool.alive  # broken executor was discarded
        assert pool.recovered == 0


class TestRunnerIntegration:
    def test_forced_oversubscription_is_byte_identical(self, monkeypatch):
        # The acceptance scenario: REPRO_JOBS=4 on a small box must
        # engage the pool and match the serial loop byte for byte.
        monkeypatch.setenv("REPRO_JOBS", "4")
        specs = [small_spec(seed=s) for s in (21, 22, 23, 24, 25)]
        expected = [execute_spec(s).to_json() for s in specs]
        with ParallelRunner() as runner:
            out = runner.run(specs)
        stats = runner.last_stats
        assert stats.mode == "parallel", stats.fallback_reason
        assert stats.workers == 4
        assert stats.worker_source == "REPRO_JOBS=4"
        assert [s.to_json() for s in out] == expected

    def test_runner_pool_outlives_batches(self):
        specs = [small_spec(seed=s) for s in (31, 32)]
        with ParallelRunner(max_workers=2) as runner:
            runner.run(specs)
            pool = runner.pool
            assert pool is not None and pool.batches == 1
            runner.run([small_spec(seed=s) for s in (33, 34)])
            assert runner.pool is pool  # same pool, same workers
            assert pool.batches == 2
        assert runner.pool is None  # close() tore it down

    def test_spec_seconds_attributed_in_spec_order(self):
        # One spec is ~50x heavier; work stealing must not scramble
        # which slot its seconds land in.
        specs = [
            small_spec(seed=41, cpu_work=100),
            small_spec(seed=42, cpu_work=6000),
            small_spec(seed=43, cpu_work=100),
        ]
        with ParallelRunner(max_workers=2) as runner:
            runner.run(specs)
        seconds = runner.last_stats.spec_seconds
        assert len(seconds) == len(specs)
        assert seconds.index(max(seconds)) == 1
