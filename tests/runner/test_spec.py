"""Unit tests for RunSpec serialization and content hashing."""

import pytest

from repro.errors import ConfigError
from repro.regulation.factory import RegulatorSpec
from repro.runner import RunSpec, config_from_dict, config_to_dict
from repro.soc.presets import kv260, zcu102
from repro.soc.scenarios import make_scenario


def small_config(**kwargs):
    return zcu102(num_accels=2, cpu_work=200, **kwargs)


class TestContentHash:
    def test_stable_across_instances(self):
        a = RunSpec(config=small_config())
        b = RunSpec(config=small_config())
        assert a.content_hash() == b.content_hash()

    def test_hash_is_hex_digest(self):
        digest = RunSpec(config=small_config()).content_hash()
        assert len(digest) == 64
        int(digest, 16)  # parses as hex

    def test_sensitive_to_seed(self):
        a = RunSpec(config=small_config(seed=1))
        b = RunSpec(config=small_config(seed=2))
        assert a.content_hash() != b.content_hash()

    def test_sensitive_to_horizon_and_stop(self):
        base = RunSpec(config=small_config())
        horizon = RunSpec(config=small_config(), max_cycles=123_456)
        stop = RunSpec(config=small_config(), stop_when_critical_done=False)
        assert len({base.content_hash(), horizon.content_hash(),
                    stop.content_hash()}) == 3

    def test_sensitive_to_regulator(self):
        reg = RegulatorSpec(kind="tightly_coupled", budget_bytes=512)
        a = RunSpec(config=small_config())
        b = RunSpec(config=small_config(accel_regulator=reg))
        assert a.content_hash() != b.content_hash()

    def test_sensitive_to_monitor(self):
        a = RunSpec(config=small_config())
        b = RunSpec(config=small_config(), monitor_master="acc0")
        assert a.content_hash() != b.content_hash()


class TestValidation:
    def test_rejects_bad_horizon(self):
        with pytest.raises(ConfigError):
            RunSpec(config=small_config(), max_cycles=0)

    def test_rejects_unknown_monitor_master(self):
        with pytest.raises(ConfigError):
            RunSpec(config=small_config(), monitor_master="ghost")

    def test_rejects_bad_bin(self):
        with pytest.raises(ConfigError):
            RunSpec(
                config=small_config(),
                monitor_master="acc0",
                monitor_bin_cycles=0,
            )


class TestRoundTrip:
    @pytest.mark.parametrize(
        "config",
        [
            zcu102(num_accels=1, cpu_work=100),
            zcu102(
                num_accels=2,
                cpu_work=100,
                accel_regulator=RegulatorSpec(
                    kind="memguard", period_cycles=10_000, reclaim=True
                ),
            ),
            kv260(num_accels=1, cpu_work=100),
            make_scenario("industrial"),
        ],
        ids=["plain", "regulated", "kv260", "scenario"],
    )
    def test_spec_roundtrip_preserves_hash(self, config):
        spec = RunSpec(config=config, max_cycles=50_000)
        back = RunSpec.from_dict(spec.to_dict())
        assert back == spec
        assert back.content_hash() == spec.content_hash()

    def test_config_roundtrip_equals(self):
        config = small_config(
            accel_regulator=RegulatorSpec(kind="tightly_coupled")
        )
        assert config_from_dict(config_to_dict(config)) == config

    def test_rejects_wrong_schema(self):
        data = RunSpec(config=small_config()).to_dict()
        data["schema"] = 999
        with pytest.raises(ConfigError):
            RunSpec.from_dict(data)

    def test_rejects_malformed_config(self):
        with pytest.raises(ConfigError):
            config_from_dict({"masters": [{"bogus": True}]})
