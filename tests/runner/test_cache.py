"""Unit tests for the on-disk result cache."""

import json
import os

from repro.runner import ResultCache, RunSpec, execute_spec
from repro.runner.cache import CACHE_SCHEMA
from repro.soc.presets import zcu102


def small_spec(seed=1):
    return RunSpec(config=zcu102(num_accels=1, cpu_work=100, seed=seed))


class TestCacheBasics:
    def test_miss_on_empty(self, tmp_path):
        cache = ResultCache(root=str(tmp_path))
        assert cache.get(small_spec()) is None

    def test_put_get_roundtrip(self, tmp_path):
        cache = ResultCache(root=str(tmp_path))
        spec = small_spec()
        summary = execute_spec(spec)
        cache.put(spec, summary)
        back = cache.get(spec)
        assert back is not None
        assert back.to_json() == summary.to_json()

    def test_keyed_by_content(self, tmp_path):
        cache = ResultCache(root=str(tmp_path))
        spec = small_spec(seed=1)
        cache.put(spec, execute_spec(spec))
        assert cache.get(small_spec(seed=2)) is None

    def test_no_leftover_temp_files(self, tmp_path):
        cache = ResultCache(root=str(tmp_path))
        spec = small_spec()
        cache.put(spec, execute_spec(spec))
        assert [p for p in os.listdir(tmp_path) if p.endswith(".tmp")] == []


class TestPoisonedEntries:
    def _poison(self, cache, spec, text):
        os.makedirs(cache.root, exist_ok=True)
        with open(cache.path_for(spec), "w") as fh:
            fh.write(text)

    def test_garbage_is_discarded(self, tmp_path):
        cache = ResultCache(root=str(tmp_path))
        spec = small_spec()
        self._poison(cache, spec, "{not json at all")
        assert cache.get(spec) is None
        # The poisoned file is gone, so the next write starts clean.
        assert not os.path.exists(cache.path_for(spec))

    def test_wrong_schema_is_discarded(self, tmp_path):
        cache = ResultCache(root=str(tmp_path))
        spec = small_spec()
        summary = execute_spec(spec)
        payload = {
            "schema": CACHE_SCHEMA + 1,
            "spec_hash": spec.content_hash(),
            "summary": summary.to_dict(),
        }
        self._poison(cache, spec, json.dumps(payload))
        assert cache.get(spec) is None

    def test_hash_mismatch_is_discarded(self, tmp_path):
        cache = ResultCache(root=str(tmp_path))
        spec = small_spec()
        summary = execute_spec(spec)
        payload = {
            "schema": CACHE_SCHEMA,
            "spec_hash": "0" * 64,
            "summary": summary.to_dict(),
        }
        self._poison(cache, spec, json.dumps(payload))
        assert cache.get(spec) is None

    def test_truncated_summary_is_discarded(self, tmp_path):
        cache = ResultCache(root=str(tmp_path))
        spec = small_spec()
        payload = {
            "schema": CACHE_SCHEMA,
            "spec_hash": spec.content_hash(),
            "summary": {"elapsed": 5},  # masters/dram missing
        }
        self._poison(cache, spec, json.dumps(payload))
        assert cache.get(spec) is None


class TestEnvControl:
    def test_off_disables(self, monkeypatch):
        for value in ("off", "OFF", "0", "no", "false"):
            monkeypatch.setenv("REPRO_CACHE", value)
            assert ResultCache.from_env() is None

    def test_default_directory(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        cache = ResultCache.from_env()
        assert cache is not None
        assert cache.root == ".repro_cache"

    def test_custom_directory(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "alt"))
        cache = ResultCache.from_env()
        assert cache is not None
        assert cache.root == str(tmp_path / "alt")
