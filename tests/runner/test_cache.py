"""Unit tests for the on-disk result cache.

Covers the sharded layout (and migration of legacy flat entries),
poison handling, the single-flight claim protocol, and the wait path
a losing runner uses to pick up another process's result.
"""

import json
import os
import threading
import time

from repro.runner import ResultCache, RunSpec, execute_spec
from repro.runner.cache import (
    CACHE_SCHEMA,
    DEFAULT_CLAIM_TTL,
    SHARD_CHARS,
)
from repro.soc.presets import zcu102


def small_spec(seed=1):
    return RunSpec(config=zcu102(num_accels=1, cpu_work=100, seed=seed))


def _tree(root):
    """Every file under ``root``, relative, sorted."""
    found = []
    for dirpath, _dirs, files in os.walk(root):
        for name in files:
            found.append(
                os.path.relpath(os.path.join(dirpath, name), root)
            )
    return sorted(found)


class TestCacheBasics:
    def test_miss_on_empty(self, tmp_path):
        cache = ResultCache(root=str(tmp_path))
        assert cache.get(small_spec()) is None

    def test_put_get_roundtrip(self, tmp_path):
        cache = ResultCache(root=str(tmp_path))
        spec = small_spec()
        summary = execute_spec(spec)
        cache.put(spec, summary)
        back = cache.get(spec)
        assert back is not None
        assert back.to_json() == summary.to_json()

    def test_keyed_by_content(self, tmp_path):
        cache = ResultCache(root=str(tmp_path))
        spec = small_spec(seed=1)
        cache.put(spec, execute_spec(spec))
        assert cache.get(small_spec(seed=2)) is None

    def test_no_leftover_temp_files(self, tmp_path):
        cache = ResultCache(root=str(tmp_path))
        spec = small_spec()
        cache.put(spec, execute_spec(spec))
        assert [p for p in _tree(tmp_path) if p.endswith(".tmp")] == []


class TestShardedLayout:
    def test_entries_land_in_hash_prefix_shards(self, tmp_path):
        cache = ResultCache(root=str(tmp_path))
        spec = small_spec()
        digest = spec.content_hash()
        path = cache.put(spec, execute_spec(spec))
        assert path == cache.path_for(spec)
        assert _tree(tmp_path) == [
            os.path.join(digest[:SHARD_CHARS], f"{digest}.json")
        ]

    def test_legacy_flat_entry_found_and_migrated(self, tmp_path):
        cache = ResultCache(root=str(tmp_path))
        spec = small_spec()
        summary = execute_spec(spec)
        digest = spec.content_hash()
        # Simulate an entry written by a pre-sharding version.
        legacy = os.path.join(str(tmp_path), f"{digest}.json")
        payload = {
            "schema": CACHE_SCHEMA,
            "spec_hash": digest,
            "summary": summary.to_dict(),
        }
        with open(legacy, "w") as fh:
            json.dump(payload, fh)
        back = cache.get(spec)
        assert back is not None
        assert back.to_json() == summary.to_json()
        # Migrated into its shard on first read; flat copy gone.
        assert not os.path.exists(legacy)
        assert os.path.exists(cache.path_for(spec))
        # And a second lookup hits the sharded copy directly.
        assert cache.get(spec) is not None
        assert cache.hits == 2

    def test_poisoned_legacy_entry_discarded(self, tmp_path):
        cache = ResultCache(root=str(tmp_path))
        spec = small_spec()
        legacy = os.path.join(
            str(tmp_path), f"{spec.content_hash()}.json"
        )
        with open(legacy, "w") as fh:
            fh.write("{torn")
        assert cache.get(spec) is None
        assert not os.path.exists(legacy)
        assert cache.poisoned == 1


class TestPoisonedEntries:
    def _poison(self, cache, spec, text):
        path = cache.path_for(spec)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w") as fh:
            fh.write(text)

    def test_garbage_is_discarded(self, tmp_path):
        cache = ResultCache(root=str(tmp_path))
        spec = small_spec()
        self._poison(cache, spec, "{not json at all")
        assert cache.get(spec) is None
        # The poisoned file is gone, so the next write starts clean.
        assert not os.path.exists(cache.path_for(spec))

    def test_wrong_schema_is_discarded(self, tmp_path):
        cache = ResultCache(root=str(tmp_path))
        spec = small_spec()
        summary = execute_spec(spec)
        payload = {
            "schema": CACHE_SCHEMA + 1,
            "spec_hash": spec.content_hash(),
            "summary": summary.to_dict(),
        }
        self._poison(cache, spec, json.dumps(payload))
        assert cache.get(spec) is None

    def test_hash_mismatch_is_discarded(self, tmp_path):
        cache = ResultCache(root=str(tmp_path))
        spec = small_spec()
        summary = execute_spec(spec)
        payload = {
            "schema": CACHE_SCHEMA,
            "spec_hash": "0" * 64,
            "summary": summary.to_dict(),
        }
        self._poison(cache, spec, json.dumps(payload))
        assert cache.get(spec) is None

    def test_truncated_summary_is_discarded(self, tmp_path):
        cache = ResultCache(root=str(tmp_path))
        spec = small_spec()
        payload = {
            "schema": CACHE_SCHEMA,
            "spec_hash": spec.content_hash(),
            "summary": {"elapsed": 5},  # masters/dram missing
        }
        self._poison(cache, spec, json.dumps(payload))
        assert cache.get(spec) is None


class TestEnvControl:
    def test_off_disables(self, monkeypatch):
        for value in ("off", "OFF", "0", "no", "false"):
            monkeypatch.setenv("REPRO_CACHE", value)
            assert ResultCache.from_env() is None

    def test_default_directory(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        cache = ResultCache.from_env()
        assert cache is not None
        assert cache.root == ".repro_cache"

    def test_custom_directory(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "alt"))
        cache = ResultCache.from_env()
        assert cache is not None
        assert cache.root == str(tmp_path / "alt")

    def test_claim_ttl_from_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CLAIM_TTL", "5")
        assert ResultCache(root=str(tmp_path)).claim_ttl == 5.0

    def test_malformed_claim_ttl_falls_back(self, monkeypatch, tmp_path):
        for value in ("soon", "-3", "0"):
            monkeypatch.setenv("REPRO_CLAIM_TTL", value)
            cache = ResultCache(root=str(tmp_path))
            assert cache.claim_ttl == DEFAULT_CLAIM_TTL

    def test_explicit_ttl_beats_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CLAIM_TTL", "5")
        cache = ResultCache(root=str(tmp_path), claim_ttl=9.0)
        assert cache.claim_ttl == 9.0


class TestClaims:
    def test_first_claim_wins_second_loses(self, tmp_path):
        spec = small_spec()
        winner = ResultCache(root=str(tmp_path))
        loser = ResultCache(root=str(tmp_path))  # separate process stand-in
        claim = winner.try_claim(spec)
        assert claim is not None
        assert os.path.exists(claim.path)
        assert loser.try_claim(spec) is None

    def test_release_reopens_the_claim(self, tmp_path):
        spec = small_spec()
        cache = ResultCache(root=str(tmp_path))
        claim = cache.try_claim(spec)
        assert claim is not None
        claim.release()
        assert claim.released
        assert not os.path.exists(claim.path)
        claim.release()  # idempotent
        again = ResultCache(root=str(tmp_path)).try_claim(spec)
        assert again is not None
        again.release()

    def test_stale_claim_is_broken(self, tmp_path):
        spec = small_spec()
        holder = ResultCache(root=str(tmp_path))
        claim = holder.try_claim(spec)
        assert claim is not None
        past = time.time() - 3600  # repro: allow[DET001]
        os.utime(claim.path, (past, past))
        thief = ResultCache(root=str(tmp_path), claim_ttl=1.0)
        stolen = thief.try_claim(spec)
        assert stolen is not None
        stolen.release()

    def test_claim_lives_in_the_entry_shard(self, tmp_path):
        spec = small_spec()
        cache = ResultCache(root=str(tmp_path))
        assert os.path.dirname(
            cache.claim_path_for(spec)
        ) == os.path.dirname(cache.path_for(spec))


class TestWait:
    def test_wait_returns_published_entry(self, tmp_path):
        spec = small_spec()
        cache = ResultCache(root=str(tmp_path))
        summary = execute_spec(spec)
        cache.put(spec, summary)
        # Entry present: returns immediately, claim or no claim.
        back = cache.wait(spec, timeout=1.0)
        assert back is not None
        assert back.to_json() == summary.to_json()

    def test_wait_picks_up_claimants_result(self, tmp_path):
        spec = small_spec()
        claimant = ResultCache(root=str(tmp_path))
        waiter = ResultCache(root=str(tmp_path))
        summary = execute_spec(spec)
        claim = claimant.try_claim(spec)
        assert claim is not None

        def publish():
            time.sleep(0.15)
            claimant.put(spec, summary)
            claim.release()

        thread = threading.Thread(target=publish)
        thread.start()
        try:
            back = waiter.wait(spec, timeout=10.0, poll_seconds=0.01)
        finally:
            thread.join()
        assert back is not None
        assert back.to_json() == summary.to_json()

    def test_wait_times_out_on_orphan_claim(self, tmp_path):
        spec = small_spec()
        cache = ResultCache(root=str(tmp_path))
        claim = cache.try_claim(spec)  # never released, never published
        assert claim is not None
        assert cache.wait(spec, timeout=0.2, poll_seconds=0.01) is None

    def test_wait_returns_none_when_claim_released_unpublished(
        self, tmp_path
    ):
        spec = small_spec()
        cache = ResultCache(root=str(tmp_path))
        claim = cache.try_claim(spec)
        assert claim is not None
        claim.release()
        # Claim gone, nothing published: caller should compute.
        assert cache.wait(spec, timeout=5.0, poll_seconds=0.01) is None

    def test_wait_does_not_count_as_lookup_traffic(self, tmp_path):
        spec = small_spec()
        cache = ResultCache(root=str(tmp_path))
        claim = cache.try_claim(spec)
        assert claim is not None
        cache.wait(spec, timeout=0.1, poll_seconds=0.01)
        assert cache.hits == 0
        assert cache.misses == 0
