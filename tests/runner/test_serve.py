"""The ``repro serve`` batch front-end: protocol, coalescing, errors.

The server runs on a background thread with its own event loop; tests
talk to it over the real Unix socket with the synchronous client (or
a raw socket for protocol-level cases), exactly as external tools
would.
"""

import asyncio
import json
import os
import socket
import threading
import time

import pytest

import repro.runner.parallel as parallel
from repro.errors import ServeError
from repro.runner import ParallelRunner, ResultCache, RunSpec, execute_spec
from repro.runner.serve import (
    SERVE_PROTOCOL,
    BatchServer,
    ping,
    request_runs,
)
from repro.soc.presets import zcu102

pytestmark = pytest.mark.skipif(
    not hasattr(socket, "AF_UNIX"), reason="requires Unix sockets"
)


def small_spec(seed=1):
    return RunSpec(config=zcu102(num_accels=1, cpu_work=100, seed=seed))


class ServerHarness:
    """A BatchServer running on its own thread + event loop."""

    def __init__(self, runner, socket_path, **kwargs):
        self.server = BatchServer(runner, socket_path=socket_path, **kwargs)
        self.loop = asyncio.new_event_loop()
        started = threading.Event()

        def main():
            asyncio.set_event_loop(self.loop)
            self.loop.run_until_complete(self.server.start())
            started.set()
            self.loop.run_forever()

        self.thread = threading.Thread(target=main, daemon=True)
        self.thread.start()
        assert started.wait(10), "server failed to start"

    def stop(self):
        asyncio.run_coroutine_threadsafe(
            self.server.close(), self.loop
        ).result(timeout=10)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=10)
        self.loop.close()


@pytest.fixture
def served(tmp_path):
    sock = str(tmp_path / "s.sock")
    runner = ParallelRunner(
        max_workers=1, cache=ResultCache(root=str(tmp_path / "cache"))
    )
    harness = ServerHarness(runner, sock)
    try:
        yield sock, harness.server
    finally:
        harness.stop()
        runner.close()


def raw_request(sock_path, line, replies=1):
    """Send one raw line, return ``replies`` decoded response lines."""
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
        sock.settimeout(10)
        sock.connect(sock_path)
        sock.sendall(line.encode("utf-8") + b"\n")
        with sock.makefile("r", encoding="utf-8") as stream:
            return [json.loads(stream.readline()) for _ in range(replies)]


class TestProtocol:
    def test_ping(self, served):
        sock, _server = served
        assert ping(sock) is True

    def test_ping_unreachable_socket_is_false(self, tmp_path):
        assert ping(str(tmp_path / "nobody.sock")) is False

    def test_ping_reports_protocol_version(self, served):
        sock, _server = served
        (reply,) = raw_request(sock, '{"op": "ping", "id": 3}')
        assert reply == {"id": 3, "pong": True, "protocol": SERVE_PROTOCOL}

    def test_stats_op(self, served):
        import dataclasses

        from repro.runner.serve import ServeStats

        sock, server = served
        (reply,) = raw_request(sock, '{"op": "stats"}')
        assert reply["stats"]["requests"] == server.stats.requests
        # The wire shape is exactly the ServeStats dataclass: adding a
        # field there must surface here (and vice versa).
        expected = {f.name for f in dataclasses.fields(ServeStats)}
        assert set(reply["stats"]) == expected
        assert {"watches", "frames"} <= expected

    def test_malformed_json_is_an_error_line(self, served):
        sock, server = served
        (reply,) = raw_request(sock, "{this is not json")
        assert "error" in reply
        # The connection survives protocol errors.
        (pong,) = raw_request(sock, '{"op": "ping"}')
        assert pong["pong"] is True
        assert server.stats.errors >= 1

    def test_unknown_op_is_an_error_line(self, served):
        sock, _server = served
        (reply,) = raw_request(sock, '{"op": "frobnicate", "id": 9}')
        assert reply["id"] == 9
        assert "frobnicate" in reply["error"]

    def test_non_object_request_is_an_error_line(self, served):
        sock, _server = served
        (reply,) = raw_request(sock, "[1, 2, 3]")
        assert "error" in reply

    def test_empty_specs_rejected_via_client(self, served):
        sock, _server = served
        with pytest.raises(ServeError, match="non-empty"):
            request_runs(sock, [], timeout=10)

    def test_bad_spec_payload_is_an_error_line(self, served):
        sock, _server = served
        (reply,) = raw_request(
            sock, '{"id": 1, "specs": [{"not": "a spec"}]}'
        )
        assert reply["id"] == 1
        assert "bad spec" in reply["error"]


class TestRunRequests:
    def test_roundtrip_matches_direct_execution(self, served):
        sock, server = served
        specs = [small_spec(seed=1), small_spec(seed=2), small_spec(seed=1)]
        out = request_runs(sock, specs, timeout=60)
        expected = [execute_spec(s).to_json() for s in specs]
        assert [s.to_json() for s in out] == expected
        assert server.stats.requests == 1
        assert server.stats.specs == 3
        assert server.stats.coalesced == 1  # the in-request duplicate
        assert server.stats.batches >= 1

    def test_concurrent_identical_requests_coalesce(
        self, served, monkeypatch
    ):
        sock, server = served
        real = parallel._timed_execute
        executions = []

        def slow(spec):
            executions.append(spec.content_hash())
            time.sleep(0.5)
            return real(spec)

        monkeypatch.setattr(parallel, "_timed_execute", slow)
        spec = small_spec(seed=5)
        results = [None, None]

        def client(i):
            results[i] = request_runs(
                sock, [spec], timeout=60, request_id=i
            )[0]

        threads = [
            threading.Thread(target=client, args=(i,)) for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert results[0].to_json() == results[1].to_json()
        # One simulation served both clients: coalesced in flight, or
        # (if the second request arrived late) a runner cache hit --
        # either way never a second execution.
        assert len(executions) == 1


class TestLifecycle:
    def test_max_requests_drains_answers_and_exits(self, tmp_path):
        """``max_requests=1``: the one request is fully answered, then
        ``run()`` returns and the socket file is gone."""
        sock = str(tmp_path / "mr.sock")
        runner = ParallelRunner(max_workers=1)
        server = BatchServer(runner, socket_path=sock, max_requests=1)
        exited = threading.Event()

        def main():
            asyncio.run(server.run())
            exited.set()

        thread = threading.Thread(target=main, daemon=True)
        thread.start()
        try:
            deadline = time.time() + 10
            while not os.path.exists(sock) and time.time() < deadline:
                time.sleep(0.05)
            summaries = request_runs(sock, [small_spec(seed=5)], timeout=120)
            assert len(summaries) == 1
            assert exited.wait(30), "server must exit after max_requests"
            thread.join(timeout=10)
            assert not os.path.exists(sock), "socket removed on close"
            assert server.stats.requests == 1
        finally:
            runner.close()


class TestCli:
    def test_serve_parser_accepts_the_documented_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            [
                "serve",
                "--socket", "x.sock",
                "--jobs", "2",
                "--chunk-size", "3",
                "--no-cache",
                "--max-requests", "1",
            ]
        )
        assert args.socket == "x.sock"
        assert args.jobs == 2
        assert args.chunk_size == 3
        assert args.no_cache is True
        assert args.max_requests == 1
