"""Unit tests for trace recording + replay."""

import pytest

from repro.errors import ConfigError
from repro.sim.kernel import Simulator
from repro.sim.trace import TraceRecord, TraceRecorder
from repro.traffic.trace import TraceReplayMaster
from tests.conftest import MiniSystem


def synth_records(n=5, spacing=100, nbytes=64):
    return [
        TraceRecord(
            master="orig",
            txn_id=i,
            is_write=(i % 2 == 1),
            addr=i * 4096,
            nbytes=nbytes,
            created=i * spacing,
            issued=i * spacing,
            accepted=i * spacing + 2,
            completed=i * spacing + 40,
        )
        for i in range(n)
    ]


class TestValidation:
    def test_empty_trace_rejected(self, sim, mini):
        port = mini.add_port("rp")
        with pytest.raises(ConfigError):
            TraceReplayMaster(sim, port, [], mode="timed")

    def test_unknown_mode_rejected(self, sim, mini):
        port = mini.add_port("rp")
        with pytest.raises(ConfigError):
            TraceReplayMaster(sim, port, synth_records(), mode="warp")


class TestTimedReplay:
    def test_issues_at_recorded_times(self, sim, mini_norefresh):
        records = synth_records(n=4, spacing=500)
        port = mini_norefresh.add_port("rp")
        master = TraceReplayMaster(sim, port, records, mode="timed")
        master.start()
        issued_times = []
        original = master._issue_record

        def spy(record):
            issued_times.append(sim.now)
            original(record)

        master._issue_record = spy
        sim.run()
        assert issued_times == [0, 500, 1000, 1500]
        assert master.done

    def test_rewrites_master_name(self, sim, mini_norefresh):
        port = mini_norefresh.add_port("rp")
        master = TraceReplayMaster(sim, port, synth_records(n=2), mode="timed")
        master.start()
        sim.run()
        assert port.stats.counter("completed").value == 2

    def test_unsorted_records_are_sorted(self, sim, mini_norefresh):
        records = list(reversed(synth_records(n=3, spacing=300)))
        port = mini_norefresh.add_port("rp")
        master = TraceReplayMaster(sim, port, records, mode="timed")
        master.start()
        sim.run()
        assert master.done


class TestAsapReplay:
    def test_all_replayed_respecting_outstanding(self, sim, mini_norefresh):
        records = synth_records(n=20, spacing=1)
        port = mini_norefresh.add_port("rp", max_outstanding=2)
        master = TraceReplayMaster(sim, port, records, mode="asap")
        master.start()
        sim.run()
        assert master.done
        assert port.stats.counter("completed").value == 20

    def test_asap_finishes_faster_than_sparse_timed(self, sim, mini_norefresh):
        records = synth_records(n=10, spacing=2000)
        port = mini_norefresh.add_port("rp")
        asap = TraceReplayMaster(sim, port, records, mode="asap")
        asap.start()
        sim.run()
        t_asap = asap.finished_at

        sim2 = Simulator()
        mini2 = MiniSystem(sim2)
        port2 = mini2.add_port("rp")
        timed = TraceReplayMaster(sim2, port2, records, mode="timed")
        timed.start()
        sim2.run()
        assert t_asap < timed.finished_at


class TestEndToEndRoundtrip:
    def test_capture_then_replay(self, sim):
        # Capture a small run with tracing enabled.
        recorder = TraceRecorder(masters=["gen"])
        mini = MiniSystem(sim)
        from repro.axi.port import MasterPort, PortConfig
        from repro.traffic.accelerator import AcceleratorConfig, StreamAccelerator
        from repro.traffic.patterns import SequentialPattern

        port = MasterPort(
            sim, PortConfig(name="gen"), trace=recorder
        )
        mini.interconnect.attach_port(port)
        accel = StreamAccelerator(
            sim,
            port,
            AcceleratorConfig(
                pattern=SequentialPattern(0, 1 << 20, 256),
                total_bytes=4096,
            ),
        )
        accel.start()
        sim.run()
        assert len(recorder) == 16  # 4096 B / 256 B bursts

        # Replay into a fresh system.
        sim2 = Simulator()
        mini2 = MiniSystem(sim2)
        port2 = mini2.add_port("replay")
        master = TraceReplayMaster(sim2, port2, list(recorder), mode="timed")
        master.start()
        sim2.run()
        assert port2.stats.counter("bytes").value == 4096
