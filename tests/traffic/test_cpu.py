"""Unit tests for the latency-sensitive CPU core model."""

import pytest

from repro.errors import ConfigError, ProtocolError
from repro.traffic.cpu import CpuConfig, CpuCore
from repro.traffic.patterns import SequentialPattern


def make_core(sim, mini, name="cpu0", **cfg_kwargs):
    defaults = dict(
        pattern=SequentialPattern(0, 1 << 20, 64),
        num_accesses=50,
        think_cycles=10,
        mlp=2,
    )
    defaults.update(cfg_kwargs)
    port = mini.add_port(name, max_outstanding=4)
    return CpuCore(sim, port, CpuConfig(**defaults))


class TestConfigValidation:
    def test_pattern_required(self):
        with pytest.raises(ConfigError):
            CpuConfig(pattern=None)

    def test_bad_values(self):
        pattern = SequentialPattern(0, 1024, 64)
        with pytest.raises(ConfigError):
            CpuConfig(pattern=pattern, num_accesses=0)
        with pytest.raises(ConfigError):
            CpuConfig(pattern=pattern, think_cycles=-1)
        with pytest.raises(ConfigError):
            CpuConfig(pattern=pattern, mlp=0)
        with pytest.raises(ConfigError):
            CpuConfig(pattern=pattern, line_bytes=60)
        with pytest.raises(ConfigError):
            CpuConfig(pattern=pattern, write_ratio=1.5)


class TestExecution:
    def test_completes_configured_work(self, sim, mini):
        core = make_core(sim, mini, num_accesses=50)
        core.start()
        sim.run()
        assert core.done
        assert core.completed_accesses == 50
        assert core.runtime() > 0

    def test_on_finish_hook(self, sim, mini):
        core = make_core(sim, mini)
        seen = []
        core.on_finish = seen.append
        core.start()
        sim.run()
        assert seen == [core.finished_at]

    def test_runtime_before_finish_raises(self, sim, mini):
        core = make_core(sim, mini)
        with pytest.raises(ConfigError):
            core.runtime()

    def test_double_start_rejected(self, sim, mini):
        core = make_core(sim, mini)
        core.start()
        with pytest.raises(ProtocolError):
            core.start()

    def test_start_at_delays_first_issue(self, sim, mini):
        core = make_core(sim, mini, num_accesses=1)
        core.start(at=500)
        sim.run()
        assert core.finished_at > 500


class TestDependentLatency:
    def test_think_time_lengthens_runtime(self, sim, mini):
        fast = make_core(sim, mini, name="fast", think_cycles=0, num_accesses=30)
        fast.start()
        sim.run()
        t_fast = fast.runtime()

        # Fresh system for the slow core.
        from repro.sim.kernel import Simulator
        from tests.conftest import MiniSystem

        sim2 = Simulator()
        mini2 = MiniSystem(sim2)
        slow = make_core(sim2, mini2, name="slow", think_cycles=200, num_accesses=30)
        slow.start()
        sim2.run()
        assert slow.runtime() > t_fast

    def test_mlp_one_fully_serializes(self, sim, mini):
        core = make_core(sim, mini, mlp=1, num_accesses=20, think_cycles=0)
        timeline = []
        original = core._issue_next

        def spy():
            timeline.append((sim.now, core.port.outstanding + core.port.queue_depth))
            original()

        core._issue_next = spy
        core.start()
        sim.run()
        # With MLP=1 there is never more than one request in the system
        # when a new one is issued.
        assert all(inflight == 0 for _t, inflight in timeline)

    def test_mlp_bounds_inflight(self, sim, mini):
        core = make_core(sim, mini, mlp=3, num_accesses=40, think_cycles=0)
        core.start()
        max_seen = 0

        def probe(nbytes, now):
            nonlocal max_seen
            max_seen = max(max_seen, core.port.outstanding + core.port.queue_depth)

        core.port.beat_observers.append(probe)
        sim.run()
        assert max_seen <= 3


class TestWriteMixing:
    def test_write_ratio_deterministic_mix(self, sim, mini):
        core = make_core(sim, mini, write_ratio=0.25, num_accesses=40)
        writes = []
        core.port.beat_observers.append(lambda n, t: None)
        original_issue = core.issue

        def spy(is_write, **kwargs):
            writes.append(is_write)
            return original_issue(is_write=is_write, **kwargs)

        core.issue = spy
        core.start()
        sim.run()
        assert sum(writes) == 10  # exactly 25% of 40

    def test_zero_ratio_all_reads(self, sim, mini):
        core = make_core(sim, mini, write_ratio=0.0, num_accesses=20)
        core.start()
        sim.run()
        assert core.stats.counter("issued").value == 20
