"""Tests for open-loop arrival traffic."""

import pytest

from repro.errors import ConfigError
from repro.sim.rng import component_rng
from repro.traffic.arrivals import OpenLoopConfig, OpenLoopMaster
from repro.traffic.patterns import SequentialPattern


def make_master(sim, mini, **cfg_kwargs):
    defaults = dict(
        pattern=SequentialPattern(0, 1 << 20, 64),
        arrival="periodic",
        mean_gap_cycles=100.0,
        num_requests=20,
    )
    defaults.update(cfg_kwargs)
    port = mini.add_port("open", max_outstanding=32)
    return OpenLoopMaster(sim, port, OpenLoopConfig(**defaults))


class TestConfigValidation:
    def test_pattern_required(self):
        with pytest.raises(ConfigError):
            OpenLoopConfig(pattern=None)

    def test_bad_values(self):
        pattern = SequentialPattern(0, 4096, 64)
        with pytest.raises(ConfigError):
            OpenLoopConfig(pattern=pattern, arrival="uniform")
        with pytest.raises(ConfigError):
            OpenLoopConfig(pattern=pattern, mean_gap_cycles=0)
        with pytest.raises(ConfigError):
            OpenLoopConfig(pattern=pattern, arrival="periodic",
                           jitter_cycles=200, mean_gap_cycles=100)
        with pytest.raises(ConfigError):
            OpenLoopConfig(pattern=pattern, num_requests=0)

    def test_stochastic_needs_rng(self):
        pattern = SequentialPattern(0, 4096, 64)
        with pytest.raises(ConfigError):
            OpenLoopConfig(pattern=pattern, arrival="poisson")
        with pytest.raises(ConfigError):
            OpenLoopConfig(pattern=pattern, arrival="periodic",
                           jitter_cycles=10)
        # Deterministic periodic is fine without one.
        OpenLoopConfig(pattern=pattern, arrival="periodic")

    def test_offered_load(self):
        cfg = OpenLoopConfig(
            pattern=SequentialPattern(0, 4096, 64),
            arrival="periodic", mean_gap_cycles=64.0, burst_len=4,
        )
        assert cfg.offered_load_bytes_per_cycle() == pytest.approx(1.0)


class TestPeriodicArrivals:
    def test_exact_cadence(self, sim, mini_norefresh):
        master = make_master(sim, mini_norefresh, num_requests=5)
        arrival_times = []
        original = master._arrive

        def spy():
            arrival_times.append(sim.now)
            original()

        master._arrive = spy
        master.start()
        sim.run()
        assert arrival_times == [100, 200, 300, 400, 500]
        assert master.done
        assert master.backlog == 0

    def test_arrivals_do_not_stop_under_congestion(self, sim, mini_norefresh):
        # Tiny gaps on a loaded port: arrivals keep coming, backlog
        # grows in the port queue.
        master = make_master(
            sim, mini_norefresh, mean_gap_cycles=2.0, num_requests=None,
        )
        master.start()
        sim.run(until=2_000)
        assert master.arrived > 500  # external clock kept firing
        assert master.backlog > 0


class TestPoissonArrivals:
    def test_deterministic_with_seed(self, sim, mini_norefresh):
        rng = component_rng(7, "open")
        master = make_master(
            sim, mini_norefresh, arrival="poisson", rng=rng, num_requests=30
        )
        master.start()
        sim.run()
        finish_a = master.finished_at

        from repro.dram.controller import DramConfig
        from repro.dram.timing import DramTiming
        from repro.sim.kernel import Simulator
        from tests.conftest import MiniSystem

        sim2 = Simulator()
        mini2 = MiniSystem(
            sim2,
            dram_config=DramConfig(timing=DramTiming(),
                                   refresh_enabled=False),
        )
        master2 = OpenLoopMaster(
            sim2,
            mini2.add_port("open", max_outstanding=32),
            OpenLoopConfig(
                pattern=SequentialPattern(0, 1 << 20, 64),
                arrival="poisson", mean_gap_cycles=100.0,
                num_requests=30, rng=component_rng(7, "open"),
            ),
        )
        master2.start()
        sim2.run()
        assert master2.finished_at == finish_a

    def test_mean_rate_approximates_configured(self, sim, mini_norefresh):
        rng = component_rng(3, "open")
        master = make_master(
            sim, mini_norefresh, arrival="poisson", rng=rng,
            mean_gap_cycles=50.0, num_requests=400,
        )
        master.start()
        sim.run()
        mean_gap = master.finished_at / 400
        assert 0.7 * 50 < mean_gap < 1.3 * 50
