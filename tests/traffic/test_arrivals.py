"""Tests for open-loop arrival traffic."""

import pytest

from repro.errors import ConfigError
from repro.sim.rng import component_rng
from repro.traffic.arrivals import OpenLoopConfig, OpenLoopMaster
from repro.traffic.patterns import SequentialPattern


def make_master(sim, mini, **cfg_kwargs):
    defaults = dict(
        pattern=SequentialPattern(0, 1 << 20, 64),
        arrival="periodic",
        mean_gap_cycles=100.0,
        num_requests=20,
    )
    defaults.update(cfg_kwargs)
    port = mini.add_port("open", max_outstanding=32)
    return OpenLoopMaster(sim, port, OpenLoopConfig(**defaults))


class TestConfigValidation:
    def test_pattern_required(self):
        with pytest.raises(ConfigError):
            OpenLoopConfig(pattern=None)

    def test_bad_values(self):
        pattern = SequentialPattern(0, 4096, 64)
        with pytest.raises(ConfigError):
            OpenLoopConfig(pattern=pattern, arrival="uniform")
        with pytest.raises(ConfigError):
            OpenLoopConfig(pattern=pattern, mean_gap_cycles=0)
        with pytest.raises(ConfigError):
            OpenLoopConfig(pattern=pattern, arrival="periodic",
                           jitter_cycles=200, mean_gap_cycles=100)
        with pytest.raises(ConfigError):
            OpenLoopConfig(pattern=pattern, num_requests=0)

    def test_stochastic_needs_rng(self):
        pattern = SequentialPattern(0, 4096, 64)
        with pytest.raises(ConfigError):
            OpenLoopConfig(pattern=pattern, arrival="poisson")
        with pytest.raises(ConfigError):
            OpenLoopConfig(pattern=pattern, arrival="periodic",
                           jitter_cycles=10)
        # Deterministic periodic is fine without one.
        OpenLoopConfig(pattern=pattern, arrival="periodic")

    def test_offered_load(self):
        cfg = OpenLoopConfig(
            pattern=SequentialPattern(0, 4096, 64),
            arrival="periodic", mean_gap_cycles=64.0, burst_len=4,
        )
        assert cfg.offered_load_bytes_per_cycle() == pytest.approx(1.0)


class TestPeriodicArrivals:
    def test_exact_cadence(self, sim, mini_norefresh):
        master = make_master(sim, mini_norefresh, num_requests=5)
        arrival_times = []
        original = master._arrive

        def spy():
            arrival_times.append(sim.now)
            original()

        master._arrive = spy
        master.start()
        sim.run()
        assert arrival_times == [100, 200, 300, 400, 500]
        assert master.done
        assert master.backlog == 0

    def test_arrivals_do_not_stop_under_congestion(self, sim, mini_norefresh):
        # Tiny gaps on a loaded port: arrivals keep coming, backlog
        # grows in the port queue.
        master = make_master(
            sim, mini_norefresh, mean_gap_cycles=2.0, num_requests=None,
        )
        master.start()
        sim.run(until=2_000)
        assert master.arrived > 500  # external clock kept firing
        assert master.backlog > 0


class TestPoissonArrivals:
    def test_deterministic_with_seed(self, sim, mini_norefresh):
        rng = component_rng(7, "open")
        master = make_master(
            sim, mini_norefresh, arrival="poisson", rng=rng, num_requests=30
        )
        master.start()
        sim.run()
        finish_a = master.finished_at

        from repro.dram.controller import DramConfig
        from repro.dram.timing import DramTiming
        from repro.sim.kernel import Simulator
        from tests.conftest import MiniSystem

        sim2 = Simulator()
        mini2 = MiniSystem(
            sim2,
            dram_config=DramConfig(timing=DramTiming(),
                                   refresh_enabled=False),
        )
        master2 = OpenLoopMaster(
            sim2,
            mini2.add_port("open", max_outstanding=32),
            OpenLoopConfig(
                pattern=SequentialPattern(0, 1 << 20, 64),
                arrival="poisson", mean_gap_cycles=100.0,
                num_requests=30, rng=component_rng(7, "open"),
            ),
        )
        master2.start()
        sim2.run()
        assert master2.finished_at == finish_a

    def test_mean_rate_approximates_configured(self, sim, mini_norefresh):
        rng = component_rng(3, "open")
        master = make_master(
            sim, mini_norefresh, arrival="poisson", rng=rng,
            mean_gap_cycles=50.0, num_requests=400,
        )
        master.start()
        sim.run()
        mean_gap = master.finished_at / 400
        assert 0.7 * 50 < mean_gap < 1.3 * 50


class TestRefillEquivalence:
    """Block precompute must perform exactly the draws a per-request
    implementation would, in the same order."""

    def test_separate_rngs_gaps_then_addresses(self, sim, mini_norefresh):
        from repro.traffic.patterns import RandomPattern

        master = make_master(
            sim,
            mini_norefresh,
            pattern=RandomPattern(0, 1 << 20, 64, rng=component_rng(5, "addr")),
            arrival="poisson",
            rng=component_rng(5, "gaps"),
            num_requests=200,
        )
        assert master._refill()
        # Oracle: gap draws are sequential from the arrival RNG...
        gap_rng = component_rng(5, "gaps")
        times, t = [], 0
        for _ in range(200):
            t += max(1, round(gap_rng.expovariate(1.0 / 100.0)))
            times.append(t)
        # ...and address draws sequential from the pattern RNG.
        addr_rng = component_rng(5, "addr")
        slots = (1 << 20) // 64
        addrs = [addr_rng.randrange(slots) * 64 for _ in range(200)]
        assert master._times == times
        assert master._addrs == addrs

    def test_shared_rng_interleaves_gap_and_address(self, sim, mini_norefresh):
        from repro.traffic.patterns import RandomPattern

        shared = component_rng(9, "shared")
        master = make_master(
            sim,
            mini_norefresh,
            pattern=RandomPattern(0, 1 << 16, 64, rng=shared),
            arrival="poisson",
            rng=shared,
            num_requests=100,
        )
        assert master._refill()
        oracle = component_rng(9, "shared")
        slots = (1 << 16) // 64
        times, addrs, t = [], [], 0
        for _ in range(100):
            t += max(1, round(oracle.expovariate(1.0 / 100.0)))
            times.append(t)
            addrs.append(oracle.randrange(slots) * 64)
        assert master._times == times
        assert master._addrs == addrs

    def test_write_mix_accumulator_across_blocks(self, sim, mini_norefresh):
        master = make_master(
            sim, mini_norefresh, num_requests=600, write_ratio=0.3
        )
        writes = []
        while master._refill():
            writes.extend(master._writes)
        acc, oracle = 0.0, []
        for _ in range(600):
            acc += 0.3
            if acc >= 1.0:
                acc -= 1.0
                oracle.append(True)
            else:
                oracle.append(False)
        assert writes == oracle
        # Float accumulation of 0.3 drifts by at most one write over 600
        # draws; the equivalence above is the real contract.
        assert abs(sum(writes) - 180) <= 1

    def test_blocks_chain_without_gaps_or_overlap(self, sim, mini_norefresh):
        master = make_master(sim, mini_norefresh, num_requests=600)
        times = []
        while master._refill():
            times.extend(master._times)
        assert len(times) == 600
        assert times == sorted(times)
        assert times == [100 * (i + 1) for i in range(600)]
