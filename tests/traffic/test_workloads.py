"""Unit tests for the workload library."""

import pytest

from repro.errors import ConfigError
from repro.traffic.accelerator import StreamAccelerator
from repro.traffic.arrivals import OpenLoopMaster
from repro.traffic.cpu import CpuCore
from repro.traffic.workloads import WORKLOADS, make_workload


class TestRegistry:
    def test_expected_entries_present(self):
        expected = {
            "memcpy", "stream_read", "stream_write", "matmul_stream",
            "fft_stride", "pointer_chase", "stencil", "latency_probe",
            "compute_mix", "video_scale", "hash_join", "spmv",
            "open_loop_stream",
        }
        assert expected == set(WORKLOADS)

    def test_kinds_are_consistent(self):
        for spec in WORKLOADS.values():
            assert spec.kind in ("cpu", "accel")
            assert spec.description

    def test_unknown_workload_raises(self, sim, mini):
        port = mini.add_port("m0")
        with pytest.raises(ConfigError):
            make_workload("nonsense", sim, port, base=0, extent=1 << 20)


class TestInstantiation:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_builds_and_runs_bounded(self, sim, mini_norefresh, name):
        spec = WORKLOADS[name]
        port = mini_norefresh.add_port(name)
        work = 200 if spec.kind == "cpu" else 16 * 1024
        master = make_workload(
            name, sim, port, base=0x100000, extent=1 << 20, seed=3, work=work
        )
        if name == "open_loop_stream":
            # Accel-kind but not a closed-loop StreamAccelerator: its
            # arrivals come from an external clock (see arrivals.py).
            expected_cls = OpenLoopMaster
        elif spec.kind == "cpu":
            expected_cls = CpuCore
        else:
            expected_cls = StreamAccelerator
        assert isinstance(master, expected_cls)
        master.start()
        sim.run(until=2_000_000)
        assert master.done, f"workload {name} did not finish"

    def test_cpu_work_counts_accesses(self, sim, mini_norefresh):
        port = mini_norefresh.add_port("probe")
        master = make_workload(
            "latency_probe", sim, port, base=0, extent=1 << 20, work=123
        )
        master.start()
        sim.run()
        assert port.stats.counter("completed").value == 123

    def test_accel_work_counts_bytes(self, sim, mini_norefresh):
        port = mini_norefresh.add_port("dma")
        master = make_workload(
            "stream_read", sim, port, base=0, extent=1 << 20, work=8192
        )
        master.start()
        sim.run()
        assert port.stats.counter("bytes").value == 8192


class TestEnvelopes:
    def test_fft_stride_has_lower_hit_rate_than_stream(self, sim, mini_norefresh):
        port = mini_norefresh.add_port("fft")
        master = make_workload(
            "fft_stride", sim, port, base=0, extent=1 << 20, work=64 * 1024
        )
        master.start()
        sim.run()
        fft_hit_rate = mini_norefresh.dram.row_hit_rate()

        from repro.sim.kernel import Simulator
        from tests.conftest import MiniSystem

        sim2 = Simulator()
        mini2 = MiniSystem(sim2)
        port2 = mini2.add_port("seq")
        master2 = make_workload(
            "stream_read", sim2, port2, base=0, extent=1 << 20, work=64 * 1024
        )
        master2.start()
        sim2.run()
        seq_hit_rate = mini2.dram.row_hit_rate()
        assert fft_hit_rate < seq_hit_rate

    def test_pointer_chase_is_serial(self, sim, mini_norefresh):
        port = mini_norefresh.add_port("chase")
        master = make_workload(
            "pointer_chase", sim, port, base=0, extent=1 << 20, seed=5, work=100
        )
        master.start()
        sim.run()
        # One dependent access at a time: runtime >= accesses x
        # (miss latency + think), far above the pipelined case.
        assert master.finished_at > 100 * 30
