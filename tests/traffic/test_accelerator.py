"""Unit tests for the streaming DMA accelerator model."""

import pytest

from repro.errors import ConfigError
from repro.traffic.accelerator import AcceleratorConfig, StreamAccelerator
from repro.traffic.patterns import SequentialPattern


def make_accel(sim, mini, name="acc0", max_outstanding=8, **cfg_kwargs):
    defaults = dict(
        pattern=SequentialPattern(0, 1 << 20, 256),
        burst_beats=16,
        total_bytes=64 * 1024,
    )
    defaults.update(cfg_kwargs)
    port = mini.add_port(name, max_outstanding=max_outstanding)
    return StreamAccelerator(sim, port, AcceleratorConfig(**defaults))


class TestConfigValidation:
    def test_pattern_required(self):
        with pytest.raises(ConfigError):
            AcceleratorConfig(pattern=None)

    def test_bad_values(self):
        pattern = SequentialPattern(0, 4096, 256)
        with pytest.raises(ConfigError):
            AcceleratorConfig(pattern=pattern, burst_beats=0)
        with pytest.raises(ConfigError):
            AcceleratorConfig(pattern=pattern, write_ratio=2.0)
        with pytest.raises(ConfigError):
            AcceleratorConfig(pattern=pattern, inflight_target=0)
        with pytest.raises(ConfigError):
            AcceleratorConfig(pattern=pattern, total_bytes=0)

    def test_duty_cycle_needs_both_phases(self):
        pattern = SequentialPattern(0, 4096, 256)
        with pytest.raises(ConfigError):
            AcceleratorConfig(pattern=pattern, active_cycles=100, idle_cycles=0)


class TestExecution:
    def test_moves_exactly_total_bytes(self, sim, mini_norefresh):
        accel = make_accel(sim, mini_norefresh, total_bytes=16 * 1024)
        accel.start()
        sim.run()
        assert accel.done
        assert accel.moved_bytes == 16 * 1024

    def test_inflight_target_respected(self, sim, mini_norefresh):
        accel = make_accel(sim, mini_norefresh, inflight_target=3)
        max_inflight = 0
        original_fill = accel._fill

        def spy():
            nonlocal max_inflight
            original_fill()
            max_inflight = max(max_inflight, accel._inflight)

        accel._fill = spy
        accel.start()
        sim.run()
        assert max_inflight <= 3

    def test_defaults_to_port_outstanding(self, sim, mini_norefresh):
        accel = make_accel(sim, mini_norefresh, max_outstanding=5)
        assert accel._inflight_target == 5

    def test_throughput_reporting(self, sim, mini_norefresh):
        accel = make_accel(sim, mini_norefresh, total_bytes=32 * 1024)
        accel.start()
        sim.run()
        tput = accel.throughput_bytes_per_cycle(accel.finished_at)
        assert 0 < tput <= 16.0

    def test_throughput_validates_elapsed(self, sim, mini_norefresh):
        accel = make_accel(sim, mini_norefresh)
        with pytest.raises(ConfigError):
            accel.throughput_bytes_per_cycle(0)

    def test_write_mix(self, sim, mini_norefresh):
        accel = make_accel(sim, mini_norefresh, write_ratio=0.5,
                           total_bytes=16 * 1024)
        writes = []
        original_issue = accel.issue

        def spy(is_write, **kwargs):
            writes.append(is_write)
            return original_issue(is_write=is_write, **kwargs)

        accel.issue = spy
        accel.start()
        sim.run()
        assert sum(writes) == len(writes) // 2


class TestDutyCycle:
    def test_idle_phase_produces_gaps(self, sim, mini_norefresh):
        accel = make_accel(
            sim, mini_norefresh,
            total_bytes=None, active_cycles=1000, idle_cycles=3000,
        )
        accel.start()
        sim.run(until=20_000)
        # Average rate with 25% duty must be well below the always-on
        # rate (~13 B/cycle): generous bound at half.
        rate = accel.moved_bytes / 20_000
        assert rate < 13.2 * 0.5

    def test_stops_toggling_when_work_done(self, sim, mini_norefresh):
        accel = make_accel(
            sim, mini_norefresh,
            total_bytes=4096, active_cycles=1000, idle_cycles=1000,
        )
        accel.start()
        sim.run(until=1_000_000)
        assert accel.done
        # The run must drain long before the horizon (no live toggles).
        assert accel.finished_at < 100_000
