"""Unit tests for address patterns."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigError
from repro.sim.rng import component_rng
from repro.traffic.patterns import (
    RandomPattern,
    SequentialPattern,
    StridedPattern,
    make_pattern,
)


class TestSequential:
    def test_linear_walk(self):
        p = SequentialPattern(base=0x100, extent=1024, access_bytes=64)
        assert [p.next_addr() for _ in range(3)] == [0x100, 0x140, 0x180]

    def test_wraps_at_extent(self):
        p = SequentialPattern(base=0, extent=128, access_bytes=64)
        addrs = [p.next_addr() for _ in range(4)]
        assert addrs == [0, 64, 0, 64]

    def test_reset(self):
        p = SequentialPattern(base=0, extent=1024, access_bytes=64)
        p.next_addr()
        p.reset()
        assert p.next_addr() == 0

    def test_stays_in_region_forever(self):
        p = SequentialPattern(base=0x1000, extent=300, access_bytes=64)
        for _ in range(50):
            addr = p.next_addr()
            assert 0x1000 <= addr
            assert addr + 64 <= 0x1000 + 300


class TestStrided:
    def test_stride_walk(self):
        p = StridedPattern(base=0, extent=8192, stride=2048, access_bytes=64)
        assert [p.next_addr() for _ in range(4)] == [0, 2048, 4096, 6144]

    def test_wrap_shifts_lane(self):
        p = StridedPattern(base=0, extent=4096, stride=2048, access_bytes=64)
        addrs = [p.next_addr() for _ in range(4)]
        assert addrs == [0, 2048, 64, 2112]

    def test_in_region(self):
        p = StridedPattern(base=0x100, extent=10_000, stride=3000, access_bytes=128)
        for _ in range(200):
            addr = p.next_addr()
            assert 0x100 <= addr
            assert addr + 128 <= 0x100 + 10_000

    def test_validation(self):
        with pytest.raises(ConfigError):
            StridedPattern(base=0, extent=1024, stride=0, access_bytes=64)


class TestRandom:
    def test_deterministic_with_seeded_rng(self):
        a = RandomPattern(0, 4096, 64, component_rng(1, "x"))
        b = RandomPattern(0, 4096, 64, component_rng(1, "x"))
        assert [a.next_addr() for _ in range(10)] == [
            b.next_addr() for _ in range(10)
        ]

    def test_alignment_and_range(self):
        p = RandomPattern(0x1000, 4096, 64, component_rng(3, "y"))
        for _ in range(200):
            addr = p.next_addr()
            assert (addr - 0x1000) % 64 == 0
            assert 0x1000 <= addr < 0x1000 + 4096

    def test_covers_many_slots(self):
        p = RandomPattern(0, 1 << 20, 64, component_rng(5, "z"))
        seen = {p.next_addr() for _ in range(500)}
        assert len(seen) > 400  # uniform over 16k slots


class TestRegionValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(base=-1, extent=128, access_bytes=64),
            dict(base=0, extent=0, access_bytes=64),
            dict(base=0, extent=32, access_bytes=64),
            dict(base=0, extent=128, access_bytes=0),
        ],
    )
    def test_bad_regions(self, kwargs):
        with pytest.raises(ConfigError):
            SequentialPattern(**kwargs)


class TestFactory:
    def test_all_kinds(self):
        assert isinstance(
            make_pattern("sequential", 0, 1024, 64), SequentialPattern
        )
        assert isinstance(
            make_pattern("strided", 0, 1024, 64, stride=256), StridedPattern
        )
        assert isinstance(
            make_pattern("random", 0, 1024, 64, rng=component_rng(0, "r")),
            RandomPattern,
        )

    def test_strided_needs_stride(self):
        with pytest.raises(ConfigError):
            make_pattern("strided", 0, 1024, 64)

    def test_unknown_kind(self):
        with pytest.raises(ConfigError):
            make_pattern("zigzag", 0, 1024, 64)


class TestPatternProperties:
    @given(
        extent=st.integers(256, 1 << 16),
        access=st.sampled_from([32, 64, 128, 256]),
    )
    def test_sequential_always_in_bounds(self, extent, access):
        if access > extent:
            return
        p = SequentialPattern(0, extent, access)
        for _ in range(64):
            addr = p.next_addr()
            assert 0 <= addr and addr + access <= extent
