"""Unit tests for address patterns."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigError
from repro.sim.rng import component_rng
from repro.traffic.patterns import (
    RandomPattern,
    SequentialPattern,
    StridedPattern,
    make_pattern,
)


class TestSequential:
    def test_linear_walk(self):
        p = SequentialPattern(base=0x100, extent=1024, access_bytes=64)
        assert [p.next_addr() for _ in range(3)] == [0x100, 0x140, 0x180]

    def test_wraps_at_extent(self):
        p = SequentialPattern(base=0, extent=128, access_bytes=64)
        addrs = [p.next_addr() for _ in range(4)]
        assert addrs == [0, 64, 0, 64]

    def test_reset(self):
        p = SequentialPattern(base=0, extent=1024, access_bytes=64)
        p.next_addr()
        p.reset()
        assert p.next_addr() == 0

    def test_stays_in_region_forever(self):
        p = SequentialPattern(base=0x1000, extent=300, access_bytes=64)
        for _ in range(50):
            addr = p.next_addr()
            assert 0x1000 <= addr
            assert addr + 64 <= 0x1000 + 300


class TestStrided:
    def test_stride_walk(self):
        p = StridedPattern(base=0, extent=8192, stride=2048, access_bytes=64)
        assert [p.next_addr() for _ in range(4)] == [0, 2048, 4096, 6144]

    def test_wrap_shifts_lane(self):
        p = StridedPattern(base=0, extent=4096, stride=2048, access_bytes=64)
        addrs = [p.next_addr() for _ in range(4)]
        assert addrs == [0, 2048, 64, 2112]

    def test_in_region(self):
        p = StridedPattern(base=0x100, extent=10_000, stride=3000, access_bytes=128)
        for _ in range(200):
            addr = p.next_addr()
            assert 0x100 <= addr
            assert addr + 128 <= 0x100 + 10_000

    def test_validation(self):
        with pytest.raises(ConfigError):
            StridedPattern(base=0, extent=1024, stride=0, access_bytes=64)


class TestRandom:
    def test_deterministic_with_seeded_rng(self):
        a = RandomPattern(0, 4096, 64, component_rng(1, "x"))
        b = RandomPattern(0, 4096, 64, component_rng(1, "x"))
        assert [a.next_addr() for _ in range(10)] == [
            b.next_addr() for _ in range(10)
        ]

    def test_alignment_and_range(self):
        p = RandomPattern(0x1000, 4096, 64, component_rng(3, "y"))
        for _ in range(200):
            addr = p.next_addr()
            assert (addr - 0x1000) % 64 == 0
            assert 0x1000 <= addr < 0x1000 + 4096

    def test_covers_many_slots(self):
        p = RandomPattern(0, 1 << 20, 64, component_rng(5, "z"))
        seen = {p.next_addr() for _ in range(500)}
        assert len(seen) > 400  # uniform over 16k slots


class TestRegionValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(base=-1, extent=128, access_bytes=64),
            dict(base=0, extent=0, access_bytes=64),
            dict(base=0, extent=32, access_bytes=64),
            dict(base=0, extent=128, access_bytes=0),
        ],
    )
    def test_bad_regions(self, kwargs):
        with pytest.raises(ConfigError):
            SequentialPattern(**kwargs)


class TestFactory:
    def test_all_kinds(self):
        assert isinstance(
            make_pattern("sequential", 0, 1024, 64), SequentialPattern
        )
        assert isinstance(
            make_pattern("strided", 0, 1024, 64, stride=256), StridedPattern
        )
        assert isinstance(
            make_pattern("random", 0, 1024, 64, rng=component_rng(0, "r")),
            RandomPattern,
        )

    def test_strided_needs_stride(self):
        with pytest.raises(ConfigError):
            make_pattern("strided", 0, 1024, 64)

    def test_unknown_kind(self):
        with pytest.raises(ConfigError):
            make_pattern("zigzag", 0, 1024, 64)


class TestPatternProperties:
    @given(
        extent=st.integers(256, 1 << 16),
        access=st.sampled_from([32, 64, 128, 256]),
    )
    def test_sequential_always_in_bounds(self, extent, access):
        if access > extent:
            return
        p = SequentialPattern(0, extent, access)
        for _ in range(64):
            addr = p.next_addr()
            assert 0 <= addr and addr + access <= extent


class TestBlockEquivalence:
    """next_addr_block must be bit-equal to n next_addr calls --
    same addresses, same end state, same RNG stream position."""

    @staticmethod
    def _assert_block_matches_scalar(make, sizes):
        vectorized, scalar = make(), make()
        for n in sizes:
            block = vectorized.next_addr_block(n)
            # The base-class implementation is the scalar oracle.
            oracle = [scalar.next_addr() for _ in range(n)]
            assert block == oracle
        # End state: both streams continue identically.
        assert [vectorized.next_addr() for _ in range(5)] == [
            scalar.next_addr() for _ in range(5)
        ]

    @pytest.mark.parametrize(
        "base,extent,access",
        [
            (0, 4096, 64),
            (0x1000, 1000, 48),  # extent not a multiple of access
            (0, 128, 64),  # two-slot degenerate wrap
            (7, 130, 63),  # odd geometry
        ],
    )
    def test_sequential(self, base, extent, access):
        self._assert_block_matches_scalar(
            lambda: SequentialPattern(base, extent, access),
            sizes=(1, 5, 31, 32, 64, 200, 3),
        )

    @pytest.mark.parametrize(
        "base,extent,stride,access",
        [
            (0, 4096, 256, 64),  # multi-pass with lane rotation
            (0, 4096, 4096, 64),  # one emission per pass (m clamps to 1)
            (0x2000, 1000, 144, 48),  # odd geometry, non-dividing stride
            (0, 256, 64, 64),  # stride == access tail
            (0, 200, 512, 16),  # stride beyond extent: always past edge
        ],
    )
    def test_strided(self, base, extent, stride, access):
        self._assert_block_matches_scalar(
            lambda: StridedPattern(base, extent, stride, access),
            sizes=(1, 7, 32, 100, 64, 2),
        )

    def test_random_preserves_rng_stream(self):
        def make(seed_name="blockeq"):
            return RandomPattern(
                0, 1 << 16, 64, rng=component_rng(11, seed_name)
            )

        self._assert_block_matches_scalar(make, sizes=(1, 16, 64, 33))

    @given(
        extent_slots=st.integers(min_value=1, max_value=300),
        access=st.sampled_from((16, 48, 64)),
        stride_mult=st.integers(min_value=1, max_value=12),
        sizes=st.lists(
            st.integers(min_value=1, max_value=96), min_size=1, max_size=5
        ),
    )
    def test_strided_property(self, extent_slots, access, stride_mult, sizes):
        extent = extent_slots * access
        stride = stride_mult * access // 2 + access  # varied, > 0
        vectorized = StridedPattern(0, extent, stride, access)
        scalar = StridedPattern(0, extent, stride, access)
        for n in sizes:
            assert vectorized.next_addr_block(n) == [
                scalar.next_addr() for _ in range(n)
            ]
        assert vectorized._offset == scalar._offset
        assert vectorized._lane == scalar._lane
