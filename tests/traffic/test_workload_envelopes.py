"""Envelope checks for the extended workload library.

Each workload claims a memory-behaviour envelope in its docstring;
these tests verify the claims hold in simulation (locality, MLP,
read/write mix), so the library stays honest as models evolve.
"""

import pytest

from repro.sim.kernel import Simulator
from repro.traffic.workloads import make_workload
from tests.conftest import MiniSystem


def run_workload(name, work, seed=3):
    sim = Simulator()
    from repro.dram.controller import DramConfig
    from repro.dram.timing import DramTiming

    mini = MiniSystem(
        sim, dram_config=DramConfig(timing=DramTiming(), refresh_enabled=False)
    )
    port = mini.add_port(name)
    master = make_workload(
        name, sim, port, base=0x100000, extent=1 << 20, seed=seed, work=work
    )
    master.start()
    sim.run(until=4_000_000)
    return sim, mini, port, master


class TestNewWorkloadEnvelopes:
    def test_video_scale_mixes_reads_and_writes(self):
        _sim, mini, port, master = run_workload("video_scale", 64 * 1024)
        assert master.done
        # 50% writes -> the DRAM saw both directions (turnarounds).
        assert mini.dram.stats.counter("turnarounds").value > 0

    def test_video_scale_strided_locality(self):
        _sim, mini, _port, _master = run_workload("video_scale", 64 * 1024)
        stride_hit_rate = mini.dram.row_hit_rate()
        _sim2, mini2, _p2, _m2 = run_workload("stream_read", 64 * 1024)
        seq_hit_rate = mini2.dram.row_hit_rate()
        assert stride_hit_rate < seq_hit_rate

    def test_hash_join_random_locality(self):
        _sim, mini, _port, master = run_workload("hash_join", 1_000)
        assert master.done
        # Random 64 B probes over 1 MiB: row hits are rare.
        assert mini.dram.row_hit_rate() < 0.4

    def test_spmv_high_mlp_faster_than_pointer_chase(self):
        _sim, _mini, _port, spmv = run_workload("spmv", 1_000)
        _sim2, _mini2, _port2, chase = run_workload("pointer_chase", 1_000)
        assert spmv.done and chase.done
        # Same access count, same random locality: MLP=6 overlaps
        # misses that MLP=1 serializes (bank conflicts on the random
        # stream cap the overlap well short of 6x).
        assert spmv.finished_at < chase.finished_at * 0.8

    def test_seeds_differentiate_random_workloads(self):
        _s1, _m1, _p1, a = run_workload("hash_join", 500, seed=1)
        _s2, _m2, _p2, b = run_workload("hash_join", 500, seed=2)
        assert a.finished_at != b.finished_at
