"""Tests for the Master base class contract."""

import pytest

from repro.errors import ProtocolError
from repro.traffic.master import Master
from repro.axi.txn import Transaction


class _OneShotMaster(Master):
    """Minimal master: issues ``count`` reads at start, finishes when
    all responses return."""

    def __init__(self, sim, port, count=3):
        super().__init__(sim, port)
        self.count = count
        self._done = 0

    def _start(self):
        for i in range(self.count):
            self.issue(is_write=False, addr=i * 4096, burst_len=4)

    def _on_response(self, txn):
        self._done += 1
        if self._done == self.count:
            self._finish()


class TestMasterBase:
    def test_issue_stamps_and_counts(self, sim, mini_norefresh):
        port = mini_norefresh.add_port("m0")
        master = _OneShotMaster(sim, port)
        master.start()
        sim.run()
        assert master.stats.counter("issued").value == 3
        assert master.stats.counter("issued_bytes").value == 3 * 64
        assert master.done

    def test_port_can_have_only_one_master(self, sim, mini_norefresh):
        port = mini_norefresh.add_port("m0")
        _OneShotMaster(sim, port)
        with pytest.raises(ProtocolError):
            _OneShotMaster(sim, port)

    def test_finish_is_idempotent(self, sim, mini_norefresh):
        port = mini_norefresh.add_port("m0")
        master = _OneShotMaster(sim, port, count=1)
        calls = []
        master.on_finish = calls.append
        master.start()
        sim.run()
        first = master.finished_at
        master._finish()  # second call must not re-fire the hook
        assert master.finished_at == first
        assert calls == [first]

    def test_start_before_now_clamps(self, sim, mini_norefresh):
        port = mini_norefresh.add_port("m0")
        master = _OneShotMaster(sim, port, count=1)
        sim.schedule(100, lambda: None)
        sim.run(until=100)
        master.start(at=10)  # in the past relative to now=100
        sim.run(until=10_000)
        assert master.done

    def test_issue_creates_current_timestamp(self, sim, mini_norefresh):
        port = mini_norefresh.add_port("m0")

        class Delayed(_OneShotMaster):
            def _start(self):
                self.sim.schedule(500, super()._start)

        master = Delayed(sim, port, count=1)
        master.start()
        sim.run()
        # Created stamp must reflect issue time, not construction.
        latency = port.stats.sampler("latency")
        assert master.finished_at > 500
        assert latency.maximum < 500  # latency measured from creation
