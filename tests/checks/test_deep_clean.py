"""The shipped tree must pass ``repro check deep`` with its baseline.

Same acceptance gate as ``test_self_clean`` but for the whole-program
analyses: the committed deep baseline records pre-existing HOT debt
surfaced by propagation (recorded, not hidden), every regulator
satisfies or explicitly opts out of the FF contract, and no CONC
finding survives.  Fingerprints are path-relative to the repo root,
so everything here runs from there, exactly as CI does.
"""

import json
import os

import pytest

from repro.checks.baseline import load_baseline
from repro.checks.deep import DEFAULT_DEEP_BASELINE, run_deep
from repro.cli import main

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))


@pytest.fixture()
def repo_root(monkeypatch):
    monkeypatch.chdir(REPO_ROOT)


def test_shipped_tree_is_deep_clean(repo_root):
    baseline = load_baseline(DEFAULT_DEEP_BASELINE)
    result = run_deep(["src"], baseline=baseline, jobs=1)
    assert result.errors == [], [f.format_human() for f in result.errors]
    assert result.warnings == []


def test_deep_baseline_is_hot_debt_only(repo_root):
    baseline = load_baseline(DEFAULT_DEEP_BASELINE)
    result = run_deep(["src"], baseline=baseline, jobs=1)
    families = {f.rule_id[:3] for f in result.baselined}
    assert families <= {"HOT"}  # CONC/FFC must be fixed, never baselined


def test_ff_contract_covers_every_shipped_regulator(repo_root):
    result = run_deep(["src"], jobs=1)
    ffc = result.analyses["ffc"]
    assert ffc["missing"] == []
    assert ffc["implemented"] == [
        "MemGuardRegulator",
        "TdmaRegulator",
        "TightlyCoupledRegulator",
    ]
    assert ffc["opted_out"] == [
        "NoRegulation",
        "PremRegulator",
        "StaticQosRegulator",
    ]


def test_hot_and_worker_analyses_are_populated(repo_root):
    result = run_deep(["src"], jobs=1)
    hot = result.analyses["hot"]
    assert hot["anchored"] > 0
    assert hot["reachable"] >= hot["anchored"]
    assert hot["propagated"] == hot["reachable"] - hot["anchored"]
    assert "repro.sim.fastforward.FastForwardEngine.attempt" in hot["roots"]
    conc = result.analyses["conc"]
    assert (
        "repro.runner.parallel._timed_execute" in conc["worker_roots"]
    )
    assert conc["worker_reachable"] > 0
    assert conc["async_roots"] > 0


def test_parallel_scan_matches_serial(repo_root):
    serial = run_deep(["src"], jobs=1)
    parallel = run_deep(["src"], jobs=4)  # falls back serial if no pool
    assert [f.fingerprint() for f in serial.findings] == [
        f.fingerprint() for f in parallel.findings
    ]
    assert serial.files == parallel.files


class TestDeepCli:
    def test_clean_exit_zero_and_json_analyses(self, repo_root, capsys):
        code = main(["check", "deep", "src", "--format", "json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["errors"] == 0
        assert payload["analyses"]["hot"]["reachable"] > 0
        assert payload["analyses"]["hot"]["roots"]
        assert payload["analyses"]["ffc"]["missing"] == []

    def test_violation_exit_one(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)  # empty default deep baseline
        dirty = tmp_path / "dirty.py"
        dirty.write_text(
            "# repro: hot\ndef walk():\n    return [i for i in range(3)]\n"
        )
        assert main(["check", "deep", str(dirty)]) == 1
        assert "HOT001" in capsys.readouterr().out

    def test_sarif_output_shape(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        dirty = tmp_path / "dirty.py"
        dirty.write_text(
            "# repro: hot\ndef walk():\n    return [i for i in range(3)]\n"
        )
        main(["check", "deep", str(dirty), "--format", "sarif"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == "2.1.0"
        run = payload["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-check-deep"
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert "HOT001" in rule_ids
        result = run["results"][0]
        assert result["ruleId"] == "HOT001"
        assert result["locations"][0]["physicalLocation"]["region"][
            "startLine"
        ] == 3

    def test_write_baseline_then_clean(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        dirty = tmp_path / "dirty.py"
        dirty.write_text(
            "# repro: hot\ndef walk():\n    return [i for i in range(3)]\n"
        )
        assert main(["check", "deep", str(dirty), "--write-baseline"]) == 0
        capsys.readouterr()
        assert main(["check", "deep", str(dirty)]) == 0
        assert "baselined" in capsys.readouterr().out

    def test_unparseable_file_exits_two(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        broken = tmp_path / "broken.py"
        broken.write_text("def broken(:\n")
        assert main(["check", "deep", str(broken)]) == 2
