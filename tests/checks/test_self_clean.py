"""The shipped tree must lint clean with an empty baseline.

This is the acceptance gate for the whole rule set: every rule stays
honest against the codebase it polices, and any future violation
fails here before it fails in CI.
"""

import json
import os

from repro.checks.lint import lint_paths
from repro.cli import main

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
SRC = os.path.join(REPO_ROOT, "src")
BASELINE = os.path.join(REPO_ROOT, ".repro-lint-baseline.json")


def test_shipped_tree_is_clean():
    result = lint_paths([SRC], baseline_path=BASELINE)
    assert result.errors == [], [f.format_human() for f in result.errors]
    assert result.baselined == []


def test_shipped_baseline_is_empty():
    with open(BASELINE) as fh:
        payload = json.load(fh)
    assert payload == {"version": 1, "findings": {}}


class TestCheckCli:
    def test_lint_clean_exit_zero(self, capsys):
        assert main(["check", "lint", SRC, "--baseline", BASELINE]) == 0
        out = capsys.readouterr().out
        assert "0 errors" in out

    def test_lint_violation_exit_one(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)  # keep the default baseline empty
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import random\n")
        assert main(["check", "lint", str(dirty)]) == 1
        out = capsys.readouterr().out
        assert "DET002" in out
        assert f"{dirty}:1:" in out

    def test_lint_json_format(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import random\n")
        main(["check", "lint", str(dirty), "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["errors"] == 1

    def test_list_rules(self, capsys):
        assert main(["check", "lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("DET001", "HOT004", "TEL001", "ERR001", "API002"):
            assert rule_id in out

    def test_unparseable_file_exits_two(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        broken = tmp_path / "broken.py"
        broken.write_text("def broken(:\n")
        assert main(["check", "lint", str(broken)]) == 2

    def test_sanitize_diff_small(self, capsys):
        code = main(
            ["check", "sanitize", "--diff", "--hogs", "1", "--work", "200"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "byte-identical" in out
