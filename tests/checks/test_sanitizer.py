"""Kernel sanitizer: injected violations must be loud, clean runs silent."""

import pytest

from repro.checks.sanitize import SanitizingQueue, sanitize_enabled
from repro.errors import SanitizerError
from repro.sim.calendar import CalendarQueue
from repro.sim.event import Event, EventQueue
from repro.sim.kernel import Simulator


def noop():
    pass


BACKENDS = [EventQueue, CalendarQueue]


@pytest.fixture(params=BACKENDS, ids=["heap", "calendar"])
def queue(request):
    return SanitizingQueue(request.param())


class TestCleanRuns:
    def test_push_pop_recycle_cycle(self, queue):
        for t in (3, 1, 2):
            queue.push(t, 0, noop)
        times = []
        while queue.live_foreground:
            event = queue.pop()
            times.append(event.time)
            queue.recycle(event)
        assert times == [1, 2, 3]
        queue.audit()

    def test_audit_runs_periodically(self, queue):
        for t in range(3000):
            event = queue.push(t, 0, noop)
            assert queue.pop() is event
            queue.recycle(event)
        assert queue.stats()["sanitizer_audits"] >= 1

    def test_cancel_then_audit(self, queue):
        keep = queue.push(5, 0, noop)
        queue.push(6, 0, noop).cancel()
        queue.audit()
        assert queue.pop() is keep

    def test_clear_resets_tracking(self, queue):
        queue.push(5, 0, noop)
        queue.clear()
        assert len(queue) == 0
        assert queue.peek_time() is None

    def test_sanitize_enabled_parses_knob(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert not sanitize_enabled()
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        assert not sanitize_enabled()
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert sanitize_enabled()

    def test_simulator_wraps_queue_under_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        sim = Simulator()
        assert isinstance(sim._queue, SanitizingQueue)
        assert "sanitizer_ops" in sim.kernel_stats()


class TestInjectedViolations:
    def test_double_free_detected(self, queue):
        event = queue.push(5, 0, noop)
        assert queue.pop() is event
        queue.recycle(event)
        with pytest.raises(SanitizerError, match="double-free"):
            queue.recycle(event)

    def test_recycle_of_queued_event_detected(self, queue):
        event = queue.push(5, 0, noop)
        with pytest.raises(SanitizerError, match="still-queued"):
            queue.recycle(event)

    def test_push_time_rewind_detected(self, queue):
        event = queue.push(10, 0, noop)
        queue.pop()
        queue.recycle(event)
        with pytest.raises(SanitizerError, match="rewind"):
            queue.push(5, 0, noop)

    def test_post_free_mutation_detected(self, queue):
        event = queue.push(5, 0, noop)
        queue.pop()
        queue.recycle(event)
        event.time = 99  # a handler mutating an event it released
        with pytest.raises(SanitizerError, match="post-free mutation"):
            queue.audit()

    def test_violation_message_carries_provenance(self, queue):
        event = queue.push(7, 3, noop)
        queue.pop()
        queue.recycle(event)
        with pytest.raises(SanitizerError) as exc:
            queue.recycle(event)
        message = str(exc.value)
        assert "t=7" in message and "prio=3" in message
        assert "noop" in message

    def test_heap_occupancy_corruption_detected(self):
        queue = SanitizingQueue(EventQueue())
        queue.push(5, 0, noop)
        queue.inner._live_foreground += 1
        with pytest.raises(SanitizerError, match="live_foreground"):
            queue.audit()

    def test_calendar_occupancy_corruption_detected(self):
        queue = SanitizingQueue(CalendarQueue())
        queue.push(5, 0, noop)
        queue.inner._ring_count += 1
        with pytest.raises(SanitizerError, match="ring_count"):
            queue.audit()

    def test_calendar_occupancy_bit_corruption_detected(self):
        queue = SanitizingQueue(CalendarQueue())
        event = queue.push(5, 0, noop)
        index = event.time & (len(queue.inner._ring) - 1)
        queue.inner._occupied &= ~(1 << index)
        with pytest.raises(SanitizerError, match="occupancy bit"):
            queue.audit()


class _BrokenQueue:
    """Scripted inner queue used to exercise pop-side invariants."""

    def __init__(self, events):
        self.events = list(events)
        self.live_foreground = len(self.events)
        self.cancelled_pending = 0

    def push(self, time, priority, callback, daemon=False):
        event = Event(time, priority, 0, callback)
        self.events.append(event)
        self.live_foreground += 1
        return event

    def pop(self):
        self.live_foreground -= 1
        return self.events.pop(0)

    def pop_if_at(self, time):
        return self.pop()

    def peek_time(self):
        return self.events[0].time if self.events else None

    def __len__(self):
        return len(self.events)


class TestProtocolChecks:
    def test_dispatch_time_rewind_detected(self):
        events = [Event(10, 0, 0, noop), Event(4, 0, 1, noop)]
        queue = SanitizingQueue(_BrokenQueue(events))
        queue.pop()
        with pytest.raises(SanitizerError, match="rewind"):
            queue.pop()

    def test_cancelled_event_delivery_detected(self):
        event = Event(5, 0, 0, noop)
        event.cancelled = True
        queue = SanitizingQueue(_BrokenQueue([event]))
        with pytest.raises(SanitizerError, match="cancelled"):
            queue.pop()

    def test_pop_if_at_wrong_time_detected(self):
        queue = SanitizingQueue(_BrokenQueue([Event(9, 0, 0, noop)]))
        with pytest.raises(SanitizerError, match="pop_if_at"):
            queue.pop_if_at(5)

    def test_peek_time_rewind_detected(self):
        events = [Event(10, 0, 0, noop), Event(4, 0, 1, noop)]
        queue = SanitizingQueue(_BrokenQueue(events))
        queue.pop()
        with pytest.raises(SanitizerError, match="rewind"):
            queue.peek_time()
