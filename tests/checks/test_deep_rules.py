"""CONC and FFC rule families against seeded violation fixtures."""

import textwrap

from repro.checks.deep import run_deep


def deep_fixture(tmp_path, source, name="deepmod.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return run_deep([str(path)], jobs=1)


def rule_ids(result):
    return [f.rule_id for f in result.findings]


#: Real-shape worker plumbing: a pool class by the blessed name, a
#: module-level worker fn, and a submission point passing it in.
POOL_PREAMBLE = textwrap.dedent(
    """\
    class WorkerPool:
        def __init__(self, workers, worker_fn, chunk_size=None):
            self.worker_fn = worker_fn

    def launch():
        pool = WorkerPool(4, execute)
        return pool
    """
)


class TestConc001GlobalMutation:
    def test_worker_reachable_global_write_flagged(self, tmp_path):
        result = deep_fixture(
            tmp_path,
            POOL_PREAMBLE + textwrap.dedent(
                """\

                _cache = None

                def execute(spec):
                    return _materialize(spec)

                def _materialize(spec):
                    global _cache
                    _cache = spec
                    return _cache
                """
            ),
        )
        assert rule_ids(result) == ["CONC001"]
        assert "fork boundary" not in result.findings[0].message or True
        assert "_cache" in result.findings[0].message

    def test_same_write_outside_worker_code_is_clean(self, tmp_path):
        result = deep_fixture(
            tmp_path,
            """\
            _cache = None

            def configure(value):
                global _cache
                _cache = value
            """,
        )
        assert rule_ids(result) == []

    def test_allow_comment_suppresses(self, tmp_path):
        result = deep_fixture(
            tmp_path,
            POOL_PREAMBLE + textwrap.dedent(
                """\

                _cache = None

                def execute(spec):
                    global _cache
                    _cache = spec  # repro: allow[CONC001]
                """
            ),
        )
        assert rule_ids(result) == []
        assert result.suppressed >= 1


class TestConc002UnpicklableField:
    def test_callable_field_on_runspec_flagged(self, tmp_path):
        result = deep_fixture(
            tmp_path,
            """\
            from dataclasses import dataclass
            from typing import Callable

            @dataclass
            class RunSpec:
                name: str
                hook: Callable
            """,
        )
        assert rule_ids(result) == ["CONC002"]
        assert "hook" in result.findings[0].message

    def test_transitive_dataclass_field_flagged(self, tmp_path):
        result = deep_fixture(
            tmp_path,
            """\
            from dataclasses import dataclass
            from typing import Iterator

            @dataclass
            class Inner:
                stream: Iterator

            @dataclass
            class RunSpec:
                inner: Inner
            """,
        )
        assert rule_ids(result) == ["CONC002"]
        assert "stream" in result.findings[0].message

    def test_picklable_fields_clean(self, tmp_path):
        result = deep_fixture(
            tmp_path,
            """\
            from dataclasses import dataclass
            from typing import Optional, Tuple

            @dataclass
            class RunSpec:
                name: str
                shares: Tuple
                label: Optional[str] = None
            """,
        )
        assert rule_ids(result) == []


class TestConc003AsyncBlocking:
    def test_blocking_call_in_handler_flagged(self, tmp_path):
        result = deep_fixture(
            tmp_path,
            """\
            import time

            async def handle(request):
                _settle()

            def _settle():
                time.sleep(0.1)
            """,
        )
        assert rule_ids(result) == ["CONC003"]
        assert "time.sleep" in result.findings[0].message

    def test_sync_open_in_handler_flagged(self, tmp_path):
        result = deep_fixture(
            tmp_path,
            """\
            async def handle(request):
                with open(request) as fh:
                    return fh.read()
            """,
        )
        assert rule_ids(result) == ["CONC003"]

    def test_blocking_call_outside_async_is_clean(self, tmp_path):
        result = deep_fixture(
            tmp_path,
            """\
            import time

            def settle():
                time.sleep(0.1)
            """,
        )
        assert rule_ids(result) == []


class TestConc004UnclaimedWrite:
    def test_worker_reachable_write_flagged(self, tmp_path):
        result = deep_fixture(
            tmp_path,
            POOL_PREAMBLE + textwrap.dedent(
                """\

                import os

                def execute(spec):
                    os.makedirs(spec)
                """
            ),
        )
        assert rule_ids(result) == ["CONC004"]

    def test_claim_protocol_anchor_opts_out(self, tmp_path):
        result = deep_fixture(
            tmp_path,
            POOL_PREAMBLE + textwrap.dedent(
                """\

                import os

                # repro: claim-protocol
                def execute(spec):
                    os.makedirs(spec)
                """
            ),
        )
        assert rule_ids(result) == []


REGULATOR_BASE = textwrap.dedent(
    """\
    class BandwidthRegulator:
        def ff_horizon(self, now):
            return None

        def ff_advance_bulk(self, now):
            pass
    """
)


class TestFfcContract:
    def test_stub_missing_contract_flagged(self, tmp_path):
        result = deep_fixture(
            tmp_path,
            REGULATOR_BASE + textwrap.dedent(
                """\

                class StubRegulator(BandwidthRegulator):
                    def may_issue(self, txn, now):
                        return True
                """
            ),
        )
        assert rule_ids(result) == ["FFC001"]
        assert "StubRegulator" in result.findings[0].message

    def test_implementing_horizon_is_clean(self, tmp_path):
        result = deep_fixture(
            tmp_path,
            REGULATOR_BASE + textwrap.dedent(
                """\

                class GoodRegulator(BandwidthRegulator):
                    def ff_horizon(self, now):
                        return now + 1

                    def ff_advance_bulk(self, now):
                        pass
                """
            ),
        )
        assert rule_ids(result) == []

    def test_opt_out_anchor_is_clean(self, tmp_path):
        result = deep_fixture(
            tmp_path,
            REGULATOR_BASE + textwrap.dedent(
                """\

                # repro: ff-opt-out
                class PassthroughRegulator(BandwidthRegulator):
                    def may_issue(self, txn, now):
                        return True
                """
            ),
        )
        assert rule_ids(result) == []

    def test_inherited_horizon_satisfies_subclass(self, tmp_path):
        result = deep_fixture(
            tmp_path,
            REGULATOR_BASE + textwrap.dedent(
                """\

                class GoodRegulator(BandwidthRegulator):
                    def ff_horizon(self, now):
                        return now + 1

                class Derived(GoodRegulator):
                    pass
                """
            ),
        )
        assert rule_ids(result) == []


class TestFfcSignature:
    def test_wrong_parameter_name_flagged(self, tmp_path):
        result = deep_fixture(
            tmp_path,
            REGULATOR_BASE + textwrap.dedent(
                """\

                class SkewedRegulator(BandwidthRegulator):
                    def ff_horizon(self, cycle):
                        return cycle + 1
                """
            ),
        )
        assert "FFC002" in rule_ids(result)

    def test_extra_parameter_flagged(self, tmp_path):
        result = deep_fixture(
            tmp_path,
            REGULATOR_BASE + textwrap.dedent(
                """\

                class WideRegulator(BandwidthRegulator):
                    def ff_horizon(self, now, slack=0):
                        return now + slack
                """
            ),
        )
        assert "FFC002" in rule_ids(result)

    def test_async_override_flagged(self, tmp_path):
        result = deep_fixture(
            tmp_path,
            REGULATOR_BASE + textwrap.dedent(
                """\

                class SleepyRegulator(BandwidthRegulator):
                    async def ff_horizon(self, now):
                        return now + 1
                """
            ),
        )
        assert "FFC002" in rule_ids(result)


class TestFfcOrphanAdvance:
    def test_advance_without_horizon_warns(self, tmp_path):
        result = deep_fixture(
            tmp_path,
            """\
            class BandwidthRegulator:
                pass

            # repro: ff-opt-out
            class HalfRegulator(BandwidthRegulator):
                def ff_advance_bulk(self, now):
                    pass
            """,
        )
        assert rule_ids(result) == ["FFC003"]
        assert result.errors == []
        assert [f.rule_id for f in result.warnings] == ["FFC003"]
