"""Sanitized runs must be byte-identical to plain runs.

The sanitizer is a pure observer: same experiment, same seed, same
scheduler must serialize to exactly the same summary with
``REPRO_SANITIZE`` on or off -- on both queue backends.
"""

import pytest

from repro.regulation.factory import RegulatorSpec
from repro.soc.experiment import run_experiment
from repro.soc.presets import zcu102


def summary_json(monkeypatch, scheduler, sanitize):
    monkeypatch.setenv("REPRO_SCHED", scheduler)
    if sanitize:
        monkeypatch.setenv("REPRO_SANITIZE", "1")
    else:
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    spec = RegulatorSpec(
        kind="tightly_coupled", window_cycles=256, budget_bytes=410
    )
    config = zcu102(num_accels=2, cpu_work=400, accel_regulator=spec)
    return run_experiment(config).summary().to_json()


@pytest.mark.parametrize("scheduler", ["calendar", "heap"])
def test_sanitized_run_byte_identical(monkeypatch, scheduler):
    plain = summary_json(monkeypatch, scheduler, sanitize=False)
    sanitized = summary_json(monkeypatch, scheduler, sanitize=True)
    assert sanitized == plain
