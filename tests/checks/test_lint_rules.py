"""Fixture-driven tests: one positive/suppressed/clean trio per rule family.

Fixtures live outside the ``repro`` package (``repro_relpath`` returns
None for them), which deliberately puts them in scope for every rule.
"""

import textwrap

from repro.checks.engine import LintEngine, build_context


def lint_source(tmp_path, source, name="fixture.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return LintEngine().run([str(path)])


def rule_ids(result):
    return [f.rule_id for f in result.findings]


class TestDetRules:
    def test_wall_clock_flagged(self, tmp_path):
        result = lint_source(
            tmp_path,
            """\
            import time

            def stamp():
                return time.time()
            """,
        )
        assert rule_ids(result) == ["DET001"]
        assert result.findings[0].line == 4

    def test_perf_counter_allowed(self, tmp_path):
        result = lint_source(
            tmp_path,
            """\
            import time

            def stamp():
                return time.perf_counter()
            """,
        )
        assert rule_ids(result) == []

    def test_global_random_import_flagged(self, tmp_path):
        result = lint_source(
            tmp_path,
            """\
            import random

            def draw():
                return random.random()
            """,
        )
        assert "DET002" in rule_ids(result)
        assert result.findings[0].line == 1

    def test_from_random_import_flagged(self, tmp_path):
        result = lint_source(tmp_path, "from random import Random\n")
        assert rule_ids(result) == ["DET002"]

    def test_rng_module_exempt(self, tmp_path):
        pkg = tmp_path / "repro" / "sim"
        pkg.mkdir(parents=True)
        path = pkg / "rng.py"
        path.write_text("import random\n")
        result = LintEngine().run([str(path)])
        assert rule_ids(result) == []

    def test_env_read_flagged(self, tmp_path):
        result = lint_source(
            tmp_path,
            """\
            import os

            def knob():
                return os.environ.get("X"), os.environ["Y"]
            """,
        )
        assert rule_ids(result) == ["DET003", "DET003"]

    def test_env_read_exempt_in_config_layer(self, tmp_path):
        result = lint_source(
            tmp_path,
            """\
            # repro: config-layer
            import os

            def knob():
                return os.environ.get("X")
            """,
        )
        assert rule_ids(result) == []

    def test_set_iteration_flagged(self, tmp_path):
        result = lint_source(
            tmp_path,
            """\
            def drain(pending):
                for item in set(pending):
                    item()
                return [x for x in {1, 2, 3}]
            """,
        )
        assert rule_ids(result) == ["DET004", "DET004"]

    def test_set_iteration_scoped_to_order_sensitive_packages(self, tmp_path):
        pkg = tmp_path / "repro" / "analysis"
        pkg.mkdir(parents=True)
        path = pkg / "metrics.py"
        path.write_text("def f(s):\n    for x in set(s):\n        x()\n")
        result = LintEngine().run([str(path)])
        assert rule_ids(result) == []


class TestHotRules:
    def test_cold_function_unchecked(self, tmp_path):
        result = lint_source(
            tmp_path,
            """\
            def cold(self):
                return [x for x in self.items]
            """,
        )
        assert rule_ids(result) == []

    def test_comprehension_in_hot_path(self, tmp_path):
        result = lint_source(
            tmp_path,
            """\
            # repro: hot
            def dispatch(self):
                return [x for x in self.items]
            """,
        )
        assert rule_ids(result) == ["HOT001"]
        assert result.findings[0].line == 3

    def test_closure_in_hot_path(self, tmp_path):
        result = lint_source(
            tmp_path,
            """\
            # repro: hot
            def dispatch(self):
                fire = lambda: self.count + 1
                return fire()
            """,
        )
        assert rule_ids(result) == ["HOT002"]

    def test_kwargs_fanout_in_hot_path(self, tmp_path):
        result = lint_source(
            tmp_path,
            """\
            # repro: hot
            def dispatch(self, kw):
                self.push(**kw)
            """,
        )
        assert rule_ids(result) == ["HOT003"]

    def test_repeated_chain_in_hot_loop(self, tmp_path):
        result = lint_source(
            tmp_path,
            """\
            # repro: hot
            def drain(self):
                while True:
                    event = self.queue.pop()
                    if event is None:
                        break
                    self.queue.pop()
            """,
        )
        assert rule_ids(result) == ["HOT004"]
        assert "self.queue.pop" in result.findings[0].message

    def test_prebound_chain_is_clean(self, tmp_path):
        result = lint_source(
            tmp_path,
            """\
            # repro: hot
            def drain(self):
                pop = self.queue.pop
                recycle = self.queue.recycle
                while True:
                    recycle(pop())
            """,
        )
        assert rule_ids(result) == []

    def test_hot_path_decorator_anchors(self, tmp_path):
        result = lint_source(
            tmp_path,
            """\
            @hot_path
            def dispatch(self):
                return {x for x in self.items}
            """,
        )
        assert rule_ids(result) == ["HOT001"]


class TestTelRules:
    def test_registry_in_handler_flagged(self, tmp_path):
        result = lint_source(
            tmp_path,
            """\
            class Port:
                def on_beat(self):
                    get_registry().counter("beats").inc()
            """,
        )
        assert rule_ids(result) == ["TEL001"]
        assert "on_beat" in result.findings[0].message

    def test_registry_in_init_allowed(self, tmp_path):
        result = lint_source(
            tmp_path,
            """\
            class Port:
                def __init__(self):
                    self._tm = get_registry().counter("beats", master="a")
            """,
        )
        assert rule_ids(result) == []

    def test_registry_in_telemetry_bind_hook_allowed(self, tmp_path):
        result = lint_source(
            tmp_path,
            """\
            class Regulator:
                # repro: telemetry-bind
                def bind(self, port):
                    self._tm = get_registry().counter("grants")
            """,
        )
        assert rule_ids(result) == []

    def test_label_fanout_flagged(self, tmp_path):
        result = lint_source(
            tmp_path,
            """\
            def bind(registry, labels):
                return registry.counter("grants", **labels)
            """,
        )
        assert rule_ids(result) == ["TEL002"]


class TestErrRules:
    def test_blanket_raise_flagged(self, tmp_path):
        result = lint_source(
            tmp_path,
            """\
            def fail():
                raise RuntimeError("boom")
            """,
        )
        assert rule_ids(result) == ["ERR001"]
        assert result.findings[0].line == 2

    def test_precise_builtin_allowed(self, tmp_path):
        result = lint_source(
            tmp_path,
            """\
            def fail():
                raise ValueError("boom")
            """,
        )
        assert rule_ids(result) == []

    def test_bare_reraise_allowed(self, tmp_path):
        result = lint_source(
            tmp_path,
            """\
            def fail():
                try:
                    pass
                except Exception:
                    raise
            """,
        )
        assert rule_ids(result) == []


class TestApiRules:
    def test_wildcard_import_flagged(self, tmp_path):
        result = lint_source(tmp_path, "from os.path import *\n")
        assert rule_ids(result) == ["API001"]

    def test_mutable_default_flagged(self, tmp_path):
        result = lint_source(
            tmp_path,
            """\
            def collect(into=[], *, labels={}):
                return into, labels
            """,
        )
        assert rule_ids(result) == ["API002", "API002"]

    def test_none_default_allowed(self, tmp_path):
        result = lint_source(
            tmp_path,
            """\
            def collect(into=None, count=0, name="x"):
                return into
            """,
        )
        assert rule_ids(result) == []


class TestFunctionAnchors:
    def test_anchor_binds_through_decorators(self, tmp_path):
        path = tmp_path / "anchored.py"
        path.write_text(
            textwrap.dedent(
                """\
                # repro: hot
                @property
                def value(self):
                    return [x for x in self.items]
                """
            )
        )
        ctx = build_context(str(path))
        assert [fn.qualname for fn in ctx.functions_with("hot")] == ["value"]
