"""Differential fast-forward harness: grid shape and byte-identity."""

import io

import pytest

from repro.checks.ffdiff import iter_points, run_ffdiff, run_point
from repro.cli import main

FAMILIES = ("memguard", "tc_window", "tdma", "token_bucket")


class TestGrid:
    def test_full_grid_covers_every_family(self):
        points = list(iter_points())
        assert tuple(sorted({p.family for p in points})) == FAMILIES
        for family in FAMILIES:
            assert sum(1 for p in points if p.family == family) >= 2

    def test_quick_grid_one_point_per_family(self):
        points = list(iter_points(quick=True))
        assert [p.family for p in points] == list(FAMILIES)

    def test_labels_are_unique_and_reproducible(self):
        labels = [p.label for p in iter_points()]
        assert len(labels) == len(set(labels))
        assert labels == [p.label for p in iter_points()]


class TestIdentity:
    @pytest.mark.parametrize(
        "point", list(iter_points(quick=True)), ids=lambda p: p.family
    )
    def test_quick_point_is_byte_identical_and_engages(self, point):
        identical, regions = run_point(point)
        assert identical, f"{point.label} diverged under fast-forward"
        assert regions > 0, f"{point.label} never macro-stepped"


class TestCli:
    def test_quick_run_exits_zero(self):
        stream = io.StringIO()
        assert run_ffdiff(quick=True, stream=stream) == 0
        out = stream.getvalue()
        for family in FAMILIES:
            assert f"ffdiff: {family}[" in out
        assert "DIVERGED" not in out

    def test_cli_wiring(self, capsys):
        assert main(["check", "ffdiff", "--quick"]) == 0
        assert "identical" in capsys.readouterr().out
