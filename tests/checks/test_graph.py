"""Call-graph construction: edges, dispatch, anchors, propagation."""

import textwrap

from repro.checks.deep import run_deep
from repro.checks.graph import ProjectIndex, extract_symbols


def index_fixture(tmp_path, source, name="graphmod.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return ProjectIndex([extract_symbols(str(path))])


class TestEdges:
    def test_plain_name_call(self, tmp_path):
        index = index_fixture(
            tmp_path,
            """\
            def callee():
                pass

            def caller():
                callee()
            """,
        )
        assert index.callees("graphmod.caller") == {"graphmod.callee"}

    def test_decorated_function_still_resolves(self, tmp_path):
        index = index_fixture(
            tmp_path,
            """\
            import functools

            @functools.lru_cache(maxsize=None)
            def cached():
                pass

            def caller():
                cached()
            """,
        )
        assert index.callees("graphmod.caller") == {"graphmod.cached"}

    def test_method_through_self(self, tmp_path):
        index = index_fixture(
            tmp_path,
            """\
            class Engine:
                def step(self):
                    self._advance()

                def _advance(self):
                    pass
            """,
        )
        assert index.callees("graphmod.Engine.step") == {
            "graphmod.Engine._advance"
        }

    def test_closure_and_lambda_count_as_edges(self, tmp_path):
        index = index_fixture(
            tmp_path,
            """\
            def outer():
                def inner():
                    helper()
                return inner

            def helper():
                pass
            """,
        )
        assert "graphmod.outer.inner" in index.callees("graphmod.outer")
        assert index.callees("graphmod.outer.inner") == {"graphmod.helper"}

    def test_attribute_receiver_via_param_annotation(self, tmp_path):
        index = index_fixture(
            tmp_path,
            """\
            class Queue:
                def pop(self):
                    pass

            def drain(q: Queue):
                q.pop()
            """,
        )
        assert index.callees("graphmod.drain") == {"graphmod.Queue.pop"}

    def test_attribute_receiver_via_constructor_assignment(self, tmp_path):
        index = index_fixture(
            tmp_path,
            """\
            class Queue:
                def pop(self):
                    pass

            def drain():
                q = Queue()
                q.pop()
            """,
        )
        assert index.callees("graphmod.drain") == {"graphmod.Queue.pop"}

    def test_self_attr_type_from_init(self, tmp_path):
        index = index_fixture(
            tmp_path,
            """\
            class Queue:
                def pop(self):
                    pass

            class Engine:
                def __init__(self):
                    self._queue = Queue()

                def step(self):
                    self._queue.pop()
            """,
        )
        assert index.callees("graphmod.Engine.step") == {
            "graphmod.Queue.pop"
        }


class TestDynamicDispatch:
    SCHEDULERS = """\
        class Base:
            def pop(self):
                raise NotImplementedError

        class Heap(Base):
            def pop(self):
                pass

        class Calendar(Base):
            def pop(self):
                pass

        BACKENDS = {"heap": Heap, "calendar": Calendar}

        def run(sched: Base):
            sched.pop()

        def make(name):
            cls = BACKENDS[name]
            return cls()
        """

    def test_base_typed_receiver_fans_to_overrides(self, tmp_path):
        index = index_fixture(tmp_path, self.SCHEDULERS)
        assert index.callees("graphmod.run") == {
            "graphmod.Base.pop",
            "graphmod.Heap.pop",
            "graphmod.Calendar.pop",
        }

    def test_registry_lookup_dispatches_to_members(self, tmp_path):
        index = index_fixture(
            tmp_path,
            textwrap.dedent(self.SCHEDULERS) + textwrap.dedent(
                """\

                def dispatch(name):
                    BACKENDS[name](), None
                    inst = BACKENDS[name]
                    inst.pop()
                """
            ),
        )
        callees = index.callees("graphmod.dispatch")
        assert "graphmod.Heap.pop" in callees
        assert "graphmod.Calendar.pop" in callees


class TestReachability:
    def test_cycles_terminate(self, tmp_path):
        index = index_fixture(
            tmp_path,
            """\
            def ping():
                pong()

            def pong():
                ping()
            """,
        )
        assert index.reachable(["graphmod.ping"]) == {
            "graphmod.ping",
            "graphmod.pong",
        }

    def test_hot_anchor_propagates_transitively(self, tmp_path):
        path = tmp_path / "hotmod.py"
        path.write_text(textwrap.dedent(
            """\
            # repro: hot
            def root():
                middle()

            def middle():
                leaf()

            def leaf():
                x = [i for i in range(4)]
                return x
            """
        ))
        result = run_deep([str(path)], jobs=1)
        assert [f.rule_id for f in result.findings] == ["HOT001"]
        assert result.analyses["hot"]["reachable"] == 3
        assert result.analyses["hot"]["roots"] == ["hotmod.root"]

    def test_removing_anchor_shrinks_hot_set(self, tmp_path):
        anchored = textwrap.dedent(
            """\
            # repro: hot
            def root():
                middle()

            def middle():
                leaf()

            def leaf():
                pass

            def unrelated():
                pass
            """
        )
        path = tmp_path / "hotmod.py"
        path.write_text(anchored)
        with_anchor = run_deep([str(path)], jobs=1)
        path.write_text(anchored.replace("# repro: hot\n", ""))
        without_anchor = run_deep([str(path)], jobs=1)
        assert with_anchor.analyses["hot"]["reachable"] == 3
        assert without_anchor.analyses["hot"]["reachable"] == 0
        assert without_anchor.analyses["hot"]["roots"] == []
