"""Engine mechanics: suppressions, baseline, fingerprints, the front-end."""

import io
import json
import textwrap

import pytest

from repro.checks.baseline import load_baseline, write_baseline
from repro.checks.engine import LintEngine, all_rules, iter_python_files
from repro.checks.lint import format_report, run_lint
from repro.errors import LintError

VIOLATION = "import random\n"


def write_fixture(tmp_path, source, name="fixture.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return str(path)


class TestSuppressions:
    def test_same_line_allow(self, tmp_path):
        path = write_fixture(
            tmp_path, "import random  # repro: allow[DET002]\n"
        )
        result = LintEngine().run([path])
        assert result.findings == []
        assert result.suppressed == 1

    def test_line_above_allow(self, tmp_path):
        path = write_fixture(
            tmp_path, "# repro: allow[DET002]\nimport random\n"
        )
        result = LintEngine().run([path])
        assert result.findings == []
        assert result.suppressed == 1

    def test_family_allow(self, tmp_path):
        path = write_fixture(tmp_path, "import random  # repro: allow[DET]\n")
        assert LintEngine().run([path]).findings == []

    def test_wrong_rule_does_not_suppress(self, tmp_path):
        path = write_fixture(
            tmp_path, "import random  # repro: allow[HOT001]\n"
        )
        result = LintEngine().run([path])
        assert [f.rule_id for f in result.findings] == ["DET002"]
        assert result.suppressed == 0

    def test_allow_inside_string_is_not_a_suppression(self, tmp_path):
        path = write_fixture(
            tmp_path,
            '''\
            TEXT = "# repro: allow[DET002]"
            import random
            ''',
        )
        result = LintEngine().run([path])
        assert [f.rule_id for f in result.findings] == ["DET002"]


class TestBaseline:
    def test_grandfathered_finding_reported_separately(self, tmp_path):
        path = write_fixture(tmp_path, VIOLATION)
        first = LintEngine().run([path])
        assert len(first.findings) == 1
        baseline_path = str(tmp_path / "baseline.json")
        write_baseline(baseline_path, first.findings)

        second = LintEngine(baseline=load_baseline(baseline_path)).run([path])
        assert second.findings == []
        assert len(second.baselined) == 1

    def test_new_finding_not_covered_by_baseline(self, tmp_path):
        path = write_fixture(tmp_path, VIOLATION)
        baseline_path = str(tmp_path / "baseline.json")
        write_baseline(baseline_path, LintEngine().run([path]).findings)

        # A second identical violation exceeds the baselined count.
        grown = write_fixture(
            tmp_path, VIOLATION + "import os\nimport random\n"
        )
        assert grown == path
        result = LintEngine(baseline=load_baseline(baseline_path)).run([path])
        assert len(result.baselined) == 1
        assert [f.rule_id for f in result.findings] == ["DET002"]

    def test_fingerprint_survives_line_drift(self, tmp_path):
        path = write_fixture(tmp_path, VIOLATION)
        before = LintEngine().run([path]).findings[0]
        write_fixture(tmp_path, "import os\n\n" + VIOLATION)
        after = LintEngine().run([path]).findings[0]
        assert before.line != after.line
        assert before.fingerprint() == after.fingerprint()

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(str(tmp_path / "nope.json")) == {}

    def test_corrupt_baseline_raises(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(LintError):
            load_baseline(str(bad))


class TestDriver:
    def test_iter_python_files_sorted_and_filtered(self, tmp_path):
        (tmp_path / "b.py").write_text("")
        (tmp_path / "a.py").write_text("")
        (tmp_path / "notes.txt").write_text("")
        sub = tmp_path / "__pycache__"
        sub.mkdir()
        (sub / "a.cpython-311.pyc").write_text("")
        names = [p.split("/")[-1] for p in iter_python_files([str(tmp_path)])]
        assert names == ["a.py", "b.py"]

    def test_non_python_path_rejected(self, tmp_path):
        target = tmp_path / "notes.txt"
        target.write_text("")
        with pytest.raises(LintError):
            list(iter_python_files([str(target)]))

    def test_syntax_error_raises_lint_error(self, tmp_path):
        path = write_fixture(tmp_path, "def broken(:\n")
        with pytest.raises(LintError):
            LintEngine().run([path])

    def test_rule_catalogue_is_populated(self):
        ids = [r.id for r in all_rules()]
        assert ids == sorted(ids)
        families = {r.family for r in all_rules()}
        assert families == {"DET", "HOT", "TEL", "ERR", "API"}


class TestFrontEnd:
    def test_exit_codes(self, tmp_path):
        dirty = write_fixture(tmp_path, VIOLATION, name="dirty.py")
        clean = write_fixture(tmp_path, "import os\n", name="clean.py")
        sink = io.StringIO()
        assert run_lint([clean], stream=sink) == 0
        assert run_lint([dirty], stream=sink) == 1

    def test_json_format(self, tmp_path):
        path = write_fixture(tmp_path, VIOLATION)
        sink = io.StringIO()
        run_lint([path], fmt="json", stream=sink)
        payload = json.loads(sink.getvalue())
        assert payload["errors"] == 1
        assert payload["findings"][0]["rule"] == "DET002"
        assert payload["findings"][0]["line"] == 1

    def test_human_format_names_rule_and_line(self, tmp_path):
        path = write_fixture(tmp_path, "\nimport random\n")
        result = LintEngine().run([path])
        report = format_report(result)
        assert "DET002" in report
        assert f"{path}:2:" in report

    def test_write_baseline_then_clean(self, tmp_path):
        path = write_fixture(tmp_path, VIOLATION)
        baseline = str(tmp_path / "baseline.json")
        sink = io.StringIO()
        assert run_lint(
            [path], baseline_path=baseline, update_baseline=True, stream=sink
        ) == 0
        assert run_lint([path], baseline_path=baseline, stream=sink) == 0
