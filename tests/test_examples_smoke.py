"""Smoke tests: the example scripts run and say what they promise.

Examples are part of the public API surface; a refactor that breaks
them should fail CI. Each example runs in a subprocess (as a user
would invoke it); the fastest one is executed here, the rest are
import-checked so syntax/API drift is still caught cheaply.
"""

import os
import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
ALL_EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


class TestExampleInventory:
    def test_expected_examples_present(self):
        assert set(ALL_EXAMPLES) >= {
            "quickstart.py",
            "interference_study.py",
            "qos_partitioning.py",
            "dynamic_reconfiguration.py",
            "hierarchical_soc.py",
            "regulator_comparison.py",
            "admission_control.py",
            "trace_replay_study.py",
        }

    @pytest.mark.parametrize("name", ALL_EXAMPLES)
    def test_examples_compile(self, name):
        py_compile.compile(str(EXAMPLES_DIR / name), doraise=True)


class TestQuickstartRuns:
    def test_quickstart_end_to_end(self):
        proc = subprocess.run(
            [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
            capture_output=True,
            text=True,
            timeout=300,
            env={**os.environ},
        )
        assert proc.returncode == 0, proc.stderr
        out = proc.stdout
        assert "isolation baseline" in out
        assert "unregulated" in out
        assert "tightly-coupled" in out
        assert "slowdown" in out
