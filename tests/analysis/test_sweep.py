"""Unit tests for sweep helpers and table rendering."""

import pytest

from repro.errors import ConfigError
from repro.analysis.sweep import format_table, geometric_space, sweep


def _square_row(v):
    """Module-level (picklable) sweep function for the parallel tests."""
    return {"v": v, "sq": v * v}


class TestSweep:
    def test_runs_in_order(self):
        rows = sweep([1, 2, 3], lambda v: {"v": v, "sq": v * v})
        assert rows == [{"v": 1, "sq": 1}, {"v": 2, "sq": 4}, {"v": 3, "sq": 9}]

    def test_parallel_matches_serial(self):
        values = list(range(8))
        serial = sweep(values, _square_row)
        parallel = sweep(values, _square_row, parallel=True, max_workers=2)
        assert parallel == serial

    def test_parallel_with_closure_falls_back(self):
        # Lambdas cannot cross the process boundary; the call must
        # still return correct rows via the serial path.
        rows = sweep([1, 2, 3], lambda v: {"v": v}, parallel=True,
                     max_workers=2)
        assert rows == [{"v": 1}, {"v": 2}, {"v": 3}]

    def test_parallel_single_value_stays_serial(self):
        assert sweep([4], _square_row, parallel=True) == [{"v": 4, "sq": 16}]


class TestGeometricSpace:
    def test_powers(self):
        assert geometric_space(64, 1024) == [64, 128, 256, 512, 1024]

    def test_appends_stop_when_missed(self):
        assert geometric_space(64, 1000) == [64, 128, 256, 512, 1000]

    def test_custom_factor(self):
        assert geometric_space(1, 100, factor=10) == [1, 10, 100]

    def test_validation(self):
        with pytest.raises(ConfigError):
            geometric_space(0, 10)
        with pytest.raises(ConfigError):
            geometric_space(10, 5)
        with pytest.raises(ConfigError):
            geometric_space(1, 10, factor=1)


class TestFormatTable:
    def test_alignment_and_header(self):
        rows = [{"name": "a", "value": 1}, {"name": "bbbb", "value": 22}]
        text = format_table(rows)
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "----" in lines[1]
        assert len(lines) == 4
        # Columns align: 'value' column starts at same offset everywhere.
        offset = lines[0].index("value")
        assert lines[2][offset:].strip() == "1"

    def test_title(self):
        text = format_table([{"x": 1}], title="T1")
        assert text.splitlines()[0] == "T1"

    def test_column_selection_and_order(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        text = format_table(rows, columns=["c", "a"])
        header = text.splitlines()[0]
        assert header.index("c") < header.index("a")
        assert "b" not in header

    def test_float_formatting(self):
        text = format_table([{"x": 0.123456}])
        assert "0.123" in text

    def test_scientific_for_extremes(self):
        text = format_table([{"x": 1234567.0}])
        assert "e+" in text

    def test_empty_rows(self):
        assert format_table([]) == "(no rows)"
        assert format_table([], title="t") == "t"

    def test_missing_keys_render_empty(self):
        text = format_table([{"a": 1}, {"a": 2, "b": 3}], columns=["a", "b"])
        assert text  # no crash; second row holds the value
        assert "3" in text
