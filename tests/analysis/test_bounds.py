"""Tests for the analytic worst-case interference bounds."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.analysis.bounds import (
    CoRunnerEnvelope,
    guaranteed_bandwidth,
    max_tolerable_window,
    per_burst_worst_cycles,
    worst_case_read_latency,
)
from repro.axi.interconnect import InterconnectConfig
from repro.dram.timing import DramTiming
from repro.soc.experiment import run_experiment
from repro.soc.presets import zcu102, zcu102_dram, zcu102_interconnect

TIMING = DramTiming()
IC = InterconnectConfig()


class TestPerBurst:
    def test_composition(self):
        cost = per_burst_worst_cycles(TIMING, 16)
        assert cost == TIMING.conflict_latency + 16 + TIMING.rw_turnaround


class TestWorstCaseLatency:
    def test_grows_with_co_runners(self):
        bounds = [
            worst_case_read_latency(
                TIMING, IC,
                [CoRunnerEnvelope(8, 16)] * n,
            )
            for n in range(0, 5)
        ]
        assert bounds == sorted(bounds)
        assert bounds[4] > bounds[0]

    def test_zero_co_runners_is_own_service(self):
        bound = worst_case_read_latency(TIMING, IC, [], own_outstanding=1)
        assert bound < 300  # own conflict + data + refresh + pipeline

    def test_validation(self):
        with pytest.raises(ConfigError):
            worst_case_read_latency(TIMING, IC, [], critical_burst_beats=0)
        with pytest.raises(ConfigError):
            worst_case_read_latency(TIMING, IC, [], own_outstanding=0)
        with pytest.raises(ConfigError):
            CoRunnerEnvelope(0, 16)
        with pytest.raises(ConfigError):
            CoRunnerEnvelope(8, 300)

    @pytest.mark.parametrize("hogs", [1, 4, 7])
    def test_bound_is_sound_against_simulation(self, hogs):
        dram = zcu102_dram()
        bound = worst_case_read_latency(
            timing=dram.timing,
            interconnect=zcu102_interconnect(),
            co_runners=[CoRunnerEnvelope(8, 16)] * hogs,
            critical_burst_beats=4,
            frfcfs_cap=dram.frfcfs_cap,
            own_outstanding=2,
        )
        result = run_experiment(zcu102(num_accels=hogs, cpu_work=1500))
        assert result.critical().latency_max <= bound


class TestGuaranteedBandwidth:
    def test_residual(self):
        assert guaranteed_bandwidth(16.0, [1.6, 1.6]) == pytest.approx(12.8)

    def test_oversubscription_rejected(self):
        with pytest.raises(ConfigError):
            guaranteed_bandwidth(16.0, [10.0, 10.0])

    def test_validation(self):
        with pytest.raises(ConfigError):
            guaranteed_bandwidth(0, [1.0])
        with pytest.raises(ConfigError):
            guaranteed_bandwidth(16.0, [-1.0])


class TestMaxTolerableWindow:
    def test_clump_equals_budget_when_larger_than_burst(self):
        clump, cycles = max_tolerable_window(TIMING, 1638, 256)
        assert clump == 1638
        assert cycles == -(-1638 // 16)

    def test_oversize_floor_is_one_burst(self):
        clump, _cycles = max_tolerable_window(TIMING, 64, 256)
        assert clump == 256

    def test_validation(self):
        with pytest.raises(ConfigError):
            max_tolerable_window(TIMING, 0, 256)
        with pytest.raises(ConfigError):
            max_tolerable_window(TIMING, 100, 0)


class TestBoundProperties:
    @given(
        outstanding=st.integers(1, 16),
        beats=st.sampled_from([1, 4, 16, 64]),
        hogs=st.integers(0, 8),
    )
    @settings(max_examples=50, deadline=None)
    def test_bound_positive_and_monotone_in_outstanding(
        self, outstanding, beats, hogs
    ):
        envs = [CoRunnerEnvelope(outstanding, beats)] * hogs
        bound = worst_case_read_latency(TIMING, IC, envs)
        assert bound > 0
        if hogs:
            deeper = [CoRunnerEnvelope(outstanding + 1, beats)] * hogs
            assert worst_case_read_latency(TIMING, IC, deeper) > bound
