"""Unit tests for the FPGA resource model."""

import pytest

from repro.errors import ConfigError
from repro.analysis.resources import (
    ZU9EG_LUTS,
    ResourceEstimate,
    ResourceModel,
)


class TestChannelBits:
    def test_widths_follow_configuration(self):
        model = ResourceModel()
        bits = model.channel_bits(window_cycles=1024, capacity_bytes=4096)
        assert bits["window_bits"] == 11   # ceil(log2(1025))
        assert bits["credit_bits"] == 13   # ceil(log2(4097))
        assert bits["monitor_bits"] == 32

    def test_validation(self):
        with pytest.raises(ConfigError):
            ResourceModel().channel_bits(0, 100)


class TestEstimate:
    def test_linear_in_channels(self):
        model = ResourceModel()
        one = model.estimate(channels=1)
        two = model.estimate(channels=2)
        four = model.estimate(channels=4)
        per_channel = two.luts - one.luts
        assert four.luts - two.luts == pytest.approx(2 * per_channel, abs=2)

    def test_base_cost_present(self):
        model = ResourceModel()
        one = model.estimate(channels=1)
        assert one.luts > model.axi_lite_luts
        assert one.ffs > model.axi_lite_ffs

    def test_counter_width_has_weak_effect(self):
        model = ResourceModel()
        small = model.estimate(channels=4, window_cycles=64, capacity_bytes=256)
        big = model.estimate(
            channels=4, window_cycles=1 << 20, capacity_bytes=1 << 20
        )
        assert big.luts > small.luts
        # Doubling widths costs far less than doubling channels.
        assert big.luts < small.luts * 1.5

    def test_no_bram_needed(self):
        assert ResourceModel().estimate(channels=8).bram36 == 0

    def test_fraction_of_device_is_small(self):
        est = ResourceModel().estimate(channels=8)
        assert est.lut_fraction() < 0.02  # well under 2% of a ZU9EG
        assert est.ff_fraction() < 0.02

    def test_channels_validated(self):
        with pytest.raises(ConfigError):
            ResourceModel().estimate(channels=0)


class TestResourceEstimate:
    def test_fraction_helpers(self):
        est = ResourceEstimate(channels=1, luts=ZU9EG_LUTS // 10,
                               ffs=100, bram36=0)
        assert est.lut_fraction() == pytest.approx(0.1)
