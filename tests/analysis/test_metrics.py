"""Unit tests for derived QoS metrics."""

import pytest

from repro.errors import ConfigError
from repro.analysis.metrics import (
    isolation_error,
    regulation_error,
    slowdown,
    utilization_of,
)


class TestSlowdown:
    def test_values(self):
        assert slowdown(200, 100) == 2.0
        assert slowdown(100, 100) == 1.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            slowdown(100, 0)
        with pytest.raises(ConfigError):
            slowdown(0, 100)


class TestRegulationError:
    def test_overshoot_positive(self):
        assert regulation_error(1.2, 1.0) == pytest.approx(0.2)

    def test_undershoot_negative(self):
        assert regulation_error(0.9, 1.0) == pytest.approx(-0.1)

    def test_exact(self):
        assert regulation_error(1.0, 1.0) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            regulation_error(1.0, 0.0)
        with pytest.raises(ConfigError):
            regulation_error(-1.0, 1.0)


class TestUtilization:
    def test_value(self):
        # 800 bytes over 100 cycles at 16 B/cycle peak = 50%.
        assert utilization_of(800, 100, 16.0) == 0.5

    def test_validation(self):
        with pytest.raises(ConfigError):
            utilization_of(1, 0, 16.0)
        with pytest.raises(ConfigError):
            utilization_of(1, 10, 0)
        with pytest.raises(ConfigError):
            utilization_of(-1, 10, 16.0)


class TestIsolationError:
    def test_values(self):
        assert isolation_error(110, 100) == pytest.approx(0.10)
        assert isolation_error(100, 100) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            isolation_error(1, 0)
        with pytest.raises(ConfigError):
            isolation_error(-1, 10)
