"""Tests for terminal plotting helpers."""

import pytest

from repro.errors import ConfigError
from repro.analysis.ascii_plot import bar_chart, heat_grid, sparkline


class TestSparkline:
    def test_monotone_series_monotone_intensity(self):
        line = sparkline([0, 1, 2, 3, 4, 5])
        ramp = " .:-=+*#%@"
        positions = [ramp.index(ch) for ch in line]
        assert positions == sorted(positions)
        assert line[0] == " " and line[-1] == "@"

    def test_explicit_bounds(self):
        line = sparkline([5, 5, 5], lo=0, hi=10)
        assert len(set(line)) == 1

    def test_flat_series_renders_full(self):
        assert sparkline([3, 3, 3]) == "@@@"

    def test_out_of_bounds_clamped(self):
        line = sparkline([-10, 100], lo=0, hi=10)
        assert line == " @"

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            sparkline([])


class TestBarChart:
    def test_bars_scale_to_peak(self):
        text = bar_chart(["a", "bb"], [5, 10], width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10
        assert lines[0].startswith("a ")
        assert lines[1].startswith("bb")

    def test_unit_suffix(self):
        text = bar_chart(["x"], [2.5], unit=" GB/s")
        assert "2.5 GB/s" in text

    def test_validation(self):
        with pytest.raises(ConfigError):
            bar_chart(["a"], [1, 2])
        with pytest.raises(ConfigError):
            bar_chart([], [])
        with pytest.raises(ConfigError):
            bar_chart(["a"], [1], width=0)


class TestHeatGrid:
    def test_shape_and_scale(self):
        text = heat_grid(
            [[0, 5], [5, 10]],
            row_labels=["r0", "r1"],
            col_labels=["c0", "c1"],
        )
        lines = text.splitlines()
        assert len(lines) == 4  # header + 2 rows + scale
        assert "c0" in lines[0] and "c1" in lines[0]
        assert lines[1].startswith("r0")
        assert "scale:" in lines[-1]
        # Minimum cell renders blank, maximum renders full.
        assert " " in lines[1]
        assert "@" in lines[2]

    def test_legend(self):
        text = heat_grid([[1]], ["r"], ["c"], legend="p99 latency")
        assert "p99 latency" in text

    def test_validation(self):
        with pytest.raises(ConfigError):
            heat_grid([], [], [])
        with pytest.raises(ConfigError):
            heat_grid([[1]], ["a", "b"], ["c"])
        with pytest.raises(ConfigError):
            heat_grid([[1, 2]], ["a"], ["c"])
