"""Tests for platform calibration."""

import pytest

from repro.errors import ConfigError
from repro.analysis.calibration import (
    CalibrationResult,
    calibrate,
    measure_peak_bandwidth,
    measure_solo_latency,
)
from repro.soc.presets import kv260, zcu102


@pytest.fixture(scope="module")
def zcu_calibration():
    return calibrate(zcu102(num_accels=1, cpu_work=600), horizon=100_000)


class TestCalibrate:
    def test_efficiency_realistic(self, zcu_calibration):
        # Row misses + refresh put streaming efficiency in 70-95%.
        assert 0.70 <= zcu_calibration.efficiency <= 0.95
        assert zcu_calibration.theoretical_peak == 16.0

    def test_solo_latency_floor(self, zcu_calibration):
        assert 0 < zcu_calibration.solo_latency_mean < 100
        assert zcu_calibration.solo_latency_p99 >= zcu_calibration.solo_latency_mean

    def test_budget_helper(self, zcu_calibration):
        budget = zcu_calibration.budget_for_fraction(0.1, 1024)
        assert budget == round(0.1 * zcu_calibration.achievable_peak * 1024)
        with pytest.raises(ConfigError):
            zcu_calibration.budget_for_fraction(0.0, 1024)
        with pytest.raises(ConfigError):
            zcu_calibration.budget_for_fraction(0.5, 0)

    def test_no_critical_master(self):
        config = zcu102(num_accels=1, cpu_work=100)
        config = config.with_masters(
            tuple(m for m in config.masters if not m.critical)
        )
        mean, p99 = measure_solo_latency(config)
        assert (mean, p99) == (0.0, 0.0)

    def test_kv260_peak_is_lower(self, zcu_calibration):
        kv = calibrate(kv260(num_accels=1, cpu_work=600), horizon=100_000)
        assert kv.achievable_peak < zcu_calibration.achievable_peak
        assert kv.theoretical_peak == 8.0

    def test_horizon_validation(self):
        with pytest.raises(ConfigError):
            measure_peak_bandwidth(zcu102(num_accels=0, cpu_work=10),
                                   horizon=100)
