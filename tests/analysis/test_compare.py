"""Tests for run comparison utilities."""

import pytest

from repro.errors import ConfigError
from repro.analysis.compare import compare_results, critical_summary
from repro.regulation.factory import RegulatorSpec
from repro.soc.experiment import run_experiment
from repro.soc.presets import zcu102


@pytest.fixture(scope="module")
def pair():
    unreg = run_experiment(zcu102(num_accels=2, cpu_work=800))
    spec = RegulatorSpec(
        kind="tightly_coupled", window_cycles=256, budget_bytes=410
    )
    reg = run_experiment(
        zcu102(num_accels=2, cpu_work=800, accel_regulator=spec)
    )
    return unreg, reg


class TestCompareResults:
    def test_rows_cover_masters_plus_dram(self, pair):
        rows = compare_results(*pair)
        names = [r["master"] for r in rows]
        assert names == ["acc0", "acc1", "cpu0", "(dram)"]

    def test_ratios_reflect_regulation(self, pair):
        rows = compare_results(*pair)
        by_name = {r["master"]: r for r in rows}
        # Hog bandwidth dropped, critical tail improved.
        assert by_name["acc0"]["bw_ratio"] < 0.8
        assert by_name["cpu0"]["p99_ratio"] < 1.0
        assert by_name["(dram)"]["bw_ratio"] < 1.0

    def test_custom_labels(self, pair):
        rows = compare_results(*pair, label_before="unreg",
                               label_after="reg")
        assert "unreg_bw" in rows[0] and "reg_bw" in rows[0]

    def test_mismatched_masters_rejected(self, pair):
        other = run_experiment(zcu102(num_accels=1, cpu_work=400))
        with pytest.raises(ConfigError):
            compare_results(pair[0], other)


class TestCriticalSummary:
    def test_summary_keys_and_direction(self, pair):
        summary = critical_summary(*pair)
        assert summary["p99_ratio"] < 1.0
        assert summary["runtime_ratio"] < 1.0
        assert "mean_ratio" in summary
