"""Tests for scenario report rendering."""

import pytest

from repro.analysis.report import render_report
from repro.qos.budget import BandwidthBudget
from repro.regulation.factory import RegulatorSpec
from repro.soc.experiment import run_experiment, run_solo_baseline
from repro.soc.presets import zcu102


@pytest.fixture(scope="module")
def regulated_result():
    spec = RegulatorSpec(
        kind="tightly_coupled", window_cycles=256, budget_bytes=512,
        work_conserving=True,
    )
    config = zcu102(num_accels=2, cpu_work=500, accel_regulator=spec)
    return run_experiment(config), config


class TestRenderReport:
    def test_contains_all_sections(self, regulated_result):
        result, _config = regulated_result
        text = render_report(result, title="T")
        assert text.startswith("T\n=")
        assert "Masters" in text
        assert "Regulators" in text
        assert "cpu0" in text and "acc0" in text
        assert "TightlyCoupledRegulator" in text
        assert "DRAM utilization" in text

    def test_solo_section(self, regulated_result):
        result, config = regulated_result
        solo = run_solo_baseline(config, "cpu0")
        text = render_report(result, solo=solo)
        assert "slowdown" in text
        assert "p99-latency inflation" in text

    def test_no_regulators_section_when_unregulated(self):
        result = run_experiment(zcu102(num_accels=0, cpu_work=200))
        text = render_report(result)
        assert "Regulators" not in text

    def test_reconfig_log_section(self):
        from repro.soc.platform import Platform
        from repro.soc.experiment import PlatformResult

        spec = RegulatorSpec(kind="tightly_coupled", window_cycles=256,
                             budget_bytes=512)
        platform = Platform(
            zcu102(num_accels=1, cpu_work=200, accel_regulator=spec)
        )
        platform.sim.schedule_at(
            1_000,
            lambda: platform.qos_manager.set_budget(
                "acc0", BandwidthBudget(2.0)
            ),
        )
        elapsed = platform.run(1_000_000)
        text = render_report(PlatformResult(platform, elapsed))
        assert "Reconfiguration log" in text
        assert "effective_at" in text

    def test_injection_column_present_when_used(self, regulated_result):
        result, _config = regulated_result
        injected = sum(
            getattr(r, "injected_bytes", 0)
            for r in result.platform.regulators.values()
        )
        text = render_report(result)
        if injected:
            assert "injected_bytes" in text
